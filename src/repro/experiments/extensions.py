"""Harnesses for the extension experiments (beyond the paper's figures).

Each function mirrors the per-figure harnesses in
:mod:`repro.experiments.figures`: it runs one extension experiment at a
named scale and returns a :class:`~repro.experiments.figures.base.FigureResult`
whose ``extra`` carries the raw numbers.  The ablation benchmarks under
``benchmarks/`` are thin wrappers over these, and the CLI exposes them as
``ext-*`` figure ids — so every result quoted in EXPERIMENTS.md can be
regenerated with one command.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis import classify_trace, clairvoyant_replay
from repro.baselines.registry import make_cache
from repro.cluster import make_router, simulate_cluster
from repro.cluster.router import ROUTER_NAMES
from repro.core.cache import MarconiCache
from repro.engine.iteration import IterationConfig, simulate_trace_iteration
from repro.engine.server import simulate_trace
from repro.experiments.config import DATASET_CONFIGS, Scale, default_model, get_scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace
from repro.tiering import TieredMarconiCache
from repro.workloads import component_of, mix_traces
from repro.workloads.sessions import WorkloadParams

ZOO_POLICIES = ("random", "gds", "lfu", "lru", "lru_k", "gdsf", "flop_aware")
TAXONOMY_CONFIGS = {
    # (base sessions, cache GB, session rate)
    "docqa": (40, 20.0, 0.5),
    "fewshot": (160, 4.0, 2.0),
    "selfconsistency": (24, 20.0, 0.5),
}
TBT_POLICIES = ("vanilla", "vllm+", "sglang+", "marconi")


def _nominal_replay(cache, trace) -> float:
    for now, _, _, inp, full in trace.iter_requests_nominal():
        with cache.begin(inp, now) as session:
            session.commit(full, now)
    return cache.stats.token_hit_rate


def run_policy_zoo(scale: str | Scale = "bench") -> FigureResult:
    """Eviction-policy zoo plus the clairvoyant bound (nominal replay)."""
    scale = get_scale(scale)
    model = default_model()
    params = WorkloadParams(
        n_sessions=scale.sessions(48), session_rate=2.0, mean_think_s=7.5, seed=1
    )
    trace = get_trace("swebench", params)
    capacity = scale.cache_bytes(15.0)

    rates = {}
    for name in ZOO_POLICIES:
        cache = MarconiCache(model, capacity, eviction=name, alpha=1.0)
        rates[name] = _nominal_replay(cache, trace)
    rates["clairvoyant"] = clairvoyant_replay(model, trace, capacity).token_hit_rate
    return FigureResult(
        figure_id="ext-zoo",
        title="Eviction policy zoo + clairvoyant bound (SWEBench-like, 15 GB)",
        headers=["policy", "token_hit_rate"],
        rows=[
            [name, fmt(rate)]
            for name, rate in sorted(rates.items(), key=lambda item: item[1])
        ],
        paper_expectation=(
            "section 4.2's critique quantified: the pure size proxy (gds) is the "
            "worst informed policy; the clairvoyant replay bounds every online one"
        ),
        extra={"rates": rates},
    )


def run_tiering(scale: str | Scale = "bench") -> FigureResult:
    """Two-tier cache vs its single-tier primary on a contended LMSys trace."""
    scale = get_scale(scale)
    config = DATASET_CONFIGS["lmsys"]
    trace = get_trace(config.workload, config.workload_params(scale))
    model = default_model()
    primary = scale.cache_bytes(config.cache_grid_gb[0])
    secondary = 4 * primary

    variants = {
        "single-tier": lambda: MarconiCache(model, primary, alpha=1.0),
        "tiered-lru": lambda: TieredMarconiCache(
            model, primary, secondary, alpha=1.0, secondary_policy="lru"
        ),
        "tiered-flop": lambda: TieredMarconiCache(
            model, primary, secondary, alpha=1.0, secondary_policy="flop_aware"
        ),
    }
    out = {}
    for name, factory in variants.items():
        cache = factory()
        result = simulate_trace(model, cache, trace, policy_name=name)
        out[name] = {
            "hit_rate": result.token_hit_rate,
            "p95_ttft": result.ttft_percentile(95),
            "demotions": cache.stats.extra.get("demotions", 0),
            "promotions": cache.stats.extra.get("promotions", 0),
        }
    return FigureResult(
        figure_id="ext-tiering",
        title="Two-tier cache (contended primary + 4x second tier)",
        headers=["cache", "hit_rate", "p95_ttft_ms", "demotions", "promotions"],
        rows=[
            [name, fmt(v["hit_rate"]), fmt(v["p95_ttft"] * 1e3, 0),
             str(v["demotions"]), str(v["promotions"])]
            for name, v in out.items()
        ],
        paper_expectation=(
            "the hierarchical-cache direction of section 6 (CachedAttention, "
            "Pensieve): demoted checkpoints rescue hit rate lost to primary churn"
        ),
        extra={"variants": out},
    )


def run_cluster(scale: str | Scale = "bench", n_replicas: int = 4) -> FigureResult:
    """Routing policies over per-replica caches (Preble-style serving)."""
    scale = get_scale(scale)
    config = DATASET_CONFIGS["lmsys"]
    trace = get_trace(config.workload, config.workload_params(scale))
    model = default_model()
    per_replica = scale.cache_bytes(config.cache_grid_gb[1]) // n_replicas

    out = {}
    for name in ROUTER_NAMES:
        caches = [MarconiCache(model, per_replica, alpha=1.0) for _ in range(n_replicas)]
        result = simulate_cluster(model, caches, make_router(name), trace)
        out[name] = {
            "hit_rate": result.token_hit_rate,
            "p95_ttft": result.ttft_percentile(95),
            "fairness": result.load_fairness,
        }
    return FigureResult(
        figure_id="ext-cluster",
        title=f"Routing policies over {n_replicas} replica caches",
        headers=["router", "hit_rate", "p95_ttft_ms", "jain_fairness"],
        rows=[
            [name, fmt(v["hit_rate"]), fmt(v["p95_ttft"] * 1e3, 0), fmt(v["fairness"])]
            for name, v in sorted(out.items(), key=lambda item: item[1]["hit_rate"])
        ],
        paper_expectation=(
            "the Preble direction of section 6: content-blind balancing forfeits "
            "the all-or-nothing hybrid hits; prefix affinity preserves them"
        ),
        extra={"routers": out},
    )


def run_taxonomy_workloads(scale: str | Scale = "bench") -> FigureResult:
    """The taxonomy workloads' hit rates against their reuse ceilings."""
    scale = get_scale(scale)
    model = default_model()
    out = {}
    for workload, (sessions, cache_gb, rate) in TAXONOMY_CONFIGS.items():
        params = WorkloadParams(
            n_sessions=scale.sessions(sessions), session_rate=rate, seed=5
        )
        trace = get_trace(workload, params)
        row = {"ceiling": classify_trace(trace).reusable_token_share}
        for policy in ("vllm+", "sglang+", "marconi"):
            cache = make_cache(policy, model, scale.cache_bytes(cache_gb))
            row[policy] = _nominal_replay(cache, trace)
        out[workload] = row
    return FigureResult(
        figure_id="ext-taxonomy",
        title="Taxonomy workloads: token hit rate vs reuse ceiling",
        headers=["workload", "ceiling", "vllm+", "sglang+", "marconi"],
        rows=[
            [w, fmt(v["ceiling"]), fmt(v["vllm+"]), fmt(v["sglang+"]), fmt(v["marconi"])]
            for w, v in out.items()
        ],
        paper_expectation=(
            "section 4.1's purely-input scenarios: judicious admission wins on "
            "shared documents/templates; byte-identical prompts are the one "
            "regime where block granularity wins hit rate"
        ),
        extra={"workloads": out},
    )


def run_multitenant(scale: str | Scale = "bench") -> FigureResult:
    """Chat burst + agent tenant sharing one cache, per-tenant hit rates."""
    scale = get_scale(scale)
    model = default_model()
    chat = get_trace(
        "sharegpt",
        WorkloadParams(n_sessions=scale.sessions(120), session_rate=3.0,
                       mean_think_s=3.0, seed=1),
    )
    agent = get_trace(
        "swebench",
        WorkloadParams(n_sessions=scale.sessions(12), session_rate=0.2,
                       mean_think_s=10.0, seed=2),
    )
    mixed = mix_traces([chat, agent])
    capacity = scale.cache_bytes(12.0)

    out = {}
    for name, kwargs in {
        "lru": dict(eviction="lru"),
        "flop_aware": dict(eviction="flop_aware", alpha=1.0),
    }.items():
        cache = MarconiCache(model, capacity, **kwargs)
        result = simulate_trace(model, cache, mixed, policy_name=name)
        tokens: dict[str, int] = defaultdict(int)
        hits: dict[str, int] = defaultdict(int)
        for record in result.records:
            tenant = component_of(mixed, record.session_id)
            tokens[tenant] += record.input_len
            hits[tenant] += record.hit_tokens
        out[name] = {
            "overall": result.token_hit_rate,
            "chat": hits["sharegpt"] / tokens["sharegpt"],
            "agent": hits["swebench"] / tokens["swebench"],
            "flops_saved": result.total_flops_saved,
        }
    return FigureResult(
        figure_id="ext-multitenant",
        title="Multi-tenant mixture: chat burst + agent prefixes, one cache",
        headers=["eviction", "overall", "chat_tenant", "agent_tenant", "flops_saved"],
        rows=[
            [name, fmt(v["overall"]), fmt(v["chat"]), fmt(v["agent"]),
             f"{v['flops_saved']:.3g}"]
            for name, v in out.items()
        ],
        paper_expectation=(
            "the section 5.3 short-for-long trade at tenant granularity: "
            "FLOP-aware eviction protects the agent tenant's long prefixes"
        ),
        extra={"policies": out},
    )


def run_tail_tbt(scale: str | Scale = "bench") -> FigureResult:
    """Footnote 2 measured: tail TBT under iteration-level batching."""
    scale = get_scale(scale)
    model = default_model()
    trace = get_trace(
        "docqa",
        WorkloadParams(n_sessions=scale.sessions(40), session_rate=0.15, seed=5),
    )
    capacity = scale.cache_bytes(20.0)

    out = {}
    for policy in TBT_POLICIES:
        cache = make_cache(policy, model, capacity)
        result = simulate_trace_iteration(
            model, cache, trace,
            config=IterationConfig(token_budget=512),
            policy_name=policy,
        )
        out[policy] = {
            "hit_rate": result.token_hit_rate,
            "ttft_p95": result.ttft_percentile(95),
            "tbt_p95": result.tbt_percentile(95),
            "tbt_p99": result.tbt_percentile(99),
            "iterations": result.n_iterations,
        }
    return FigureResult(
        figure_id="ext-tbt",
        title="Tail TBT under iteration-level batching (open-loop doc-QA)",
        headers=["policy", "hit_rate", "ttft_p95_s", "tbt_p95_ms", "tbt_p99_ms",
                 "iterations"],
        rows=[
            [name, fmt(v["hit_rate"]), fmt(v["ttft_p95"], 2),
             fmt(v["tbt_p95"] * 1e3, 1), fmt(v["tbt_p99"] * 1e3, 1),
             str(v["iterations"])]
            for name, v in out.items()
        ],
        paper_expectation=(
            "footnote 2: a prefill-only optimization also lowers tail TPT — "
            "prefill skipped is iterations concurrent decodes don't wait through"
        ),
        extra={"policies": out},
    )
