"""Experiment scales and per-dataset configurations.

The paper runs its sweeps against 60–140 GB caches fed by real traces; this
reproduction uses synthetic traces whose working sets are smaller, so each
dataset gets a *scaled* cache grid chosen (by calibration) to span the same
contention regimes — from "barely anything fits" to "almost everything
fits".  The ``Scale`` presets shrink/grow session counts and cache budgets
together so contention ratios are preserved:

* ``smoke`` — seconds-fast, for unit tests and CI;
* ``bench`` — the default for ``benchmarks/`` and ``EXPERIMENTS.md``;
* ``full`` — a longer run for tighter statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.latency import LatencyModel
from repro.models.config import ModelConfig
from repro.models.presets import hybrid_7b
from repro.workloads.sessions import WorkloadParams

GIB = 1e9  # the paper uses decimal GB


@dataclass(frozen=True)
class Scale:
    """Joint multiplier for workload size and cache budget."""

    name: str
    session_factor: float
    cache_factor: float

    def sessions(self, base: int) -> int:
        return max(4, int(round(base * self.session_factor)))

    def cache_bytes(self, base_gb: float) -> int:
        return int(base_gb * self.cache_factor * GIB)


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", session_factor=0.2, cache_factor=0.2),
    "bench": Scale("bench", session_factor=1.0, cache_factor=1.0),
    "full": Scale("full", session_factor=2.0, cache_factor=2.0),
}


def get_scale(name: str | Scale) -> Scale:
    """Resolve a scale by name (or pass through a ``Scale`` instance)."""
    if isinstance(name, Scale):
        return name
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None


@dataclass(frozen=True)
class DatasetConfig:
    """Per-dataset workload shape and the cache grid spanning its contention range."""

    workload: str
    n_sessions: int
    session_rate: float
    mean_think_s: float
    cache_grid_gb: tuple[float, ...]
    think_grid_s: tuple[float, ...]
    seed: int = 1

    def workload_params(
        self,
        scale: Scale,
        *,
        session_rate: float | None = None,
        mean_think_s: float | None = None,
        seed: int | None = None,
    ) -> WorkloadParams:
        return WorkloadParams(
            n_sessions=scale.sessions(self.n_sessions),
            session_rate=self.session_rate if session_rate is None else session_rate,
            mean_think_s=self.mean_think_s if mean_think_s is None else mean_think_s,
            seed=self.seed if seed is None else seed,
        )

    def with_overrides(self, **kwargs) -> "DatasetConfig":
        return replace(self, **kwargs)


# Calibrated so each grid spans high -> low contention for the 7B hybrid.
DATASET_CONFIGS: dict[str, DatasetConfig] = {
    "lmsys": DatasetConfig(
        workload="lmsys",
        n_sessions=200,
        session_rate=2.0,
        mean_think_s=5.0,
        cache_grid_gb=(4.0, 6.0, 9.0, 12.0),
        think_grid_s=(5.0, 10.0),
    ),
    "sharegpt": DatasetConfig(
        workload="sharegpt",
        n_sessions=250,
        session_rate=2.0,
        mean_think_s=5.0,
        cache_grid_gb=(1.5, 2.5, 4.0, 6.0),
        think_grid_s=(5.0, 10.0),
    ),
    "swebench": DatasetConfig(
        workload="swebench",
        n_sessions=160,
        session_rate=2.0,
        mean_think_s=7.5,
        cache_grid_gb=(25.0, 35.0, 45.0, 60.0),
        think_grid_s=(5.0, 10.0),
    ),
}

DEFAULT_POLICIES: tuple[str, ...] = ("vanilla", "vllm+", "sglang+", "marconi")


def default_model() -> ModelConfig:
    """The paper's main 7B hybrid."""
    return hybrid_7b()


def default_latency() -> LatencyModel:
    return LatencyModel()
