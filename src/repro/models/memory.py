"""State-size formulas (Appendix A of the paper).

In FP16, the KVs of one Attention layer for ``L`` tokens occupy
``2 (K and V) * L * D * dtype_bytes = 4 L D`` bytes, and one SSM layer's
recurrent state occupies ``D * N * dtype_bytes = 2 D N`` bytes plus a small
causal-conv1d state of ``d_inner * (d_conv - 1) ~ in_channels * conv_kernel``
bytes (about 6% of the total for the paper's 7B hybrid; the paper omits it
from Table 1 "for simplicity, but they are included in all experiments" —
we include it everywhere too).
"""

from __future__ import annotations

from repro.models.config import ModelConfig


#: Exact-value memo for the two per-config byte constants the eviction index
#: recomputes on every candidate refresh.  Keyed by ``id(config)`` with a
#: strong reference as an identity check (same scheme as
#: ``repro.models.flops._PREFILL_MEMO``); values are lazily filled.
_BYTES_MEMO: dict[int, list] = {}
_BYTES_MEMO_MAX_CONFIGS = 64


def _bytes_memo_entry(config: ModelConfig) -> list:
    entry = _BYTES_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        if len(_BYTES_MEMO) >= _BYTES_MEMO_MAX_CONFIGS:
            _BYTES_MEMO.clear()
        entry = [config, None, None]  # [config, kv_per_token, recurrent]
        _BYTES_MEMO[id(config)] = entry
    return entry


def kv_bytes_per_token(config: ModelConfig) -> int:
    """Bytes of KV cache per token across *all* Attention layers."""
    entry = _bytes_memo_entry(config)
    value = entry[1]
    if value is None:
        per_layer = 2 * config.d_model * config.dtype_bytes  # K and V
        value = entry[1] = config.n_attention * per_layer
    return value


def ssm_state_bytes(config: ModelConfig) -> int:
    """Bytes of the recurrent SSM state for *one* SSM layer (no conv state)."""
    return config.d_model * config.d_state * config.dtype_bytes


def conv_state_bytes(config: ModelConfig) -> int:
    """Bytes of the causal-conv1d state for one SSM layer.

    The paper sizes it as ``in_channels * conv_kernel * dtype_bytes`` with
    ``in_channels = expand * d_model``.
    """
    return config.d_inner * config.d_conv * config.dtype_bytes


def recurrent_state_bytes(config: ModelConfig) -> int:
    """Bytes of one SSM layer's full state (recurrent + conv)."""
    return ssm_state_bytes(config) + conv_state_bytes(config)


def model_recurrent_bytes(config: ModelConfig) -> int:
    """Bytes of one full-model recurrent checkpoint (all SSM layers)."""
    entry = _bytes_memo_entry(config)
    value = entry[2]
    if value is None:
        value = entry[2] = config.n_ssm * recurrent_state_bytes(config)
    return value


def kv_bytes(config: ModelConfig, n_tokens: int) -> int:
    """Bytes of KV cache for ``n_tokens`` tokens across all Attention layers."""
    if n_tokens < 0:
        raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
    return n_tokens * kv_bytes_per_token(config)


def transfer_state_bytes(config: ModelConfig, depth: int) -> int:
    """Bytes of the self-contained shippable state of a ``depth``-token prefix.

    A cross-replica transfer must carry the prefix's KVs across all
    Attention layers plus exactly one full-model recurrent checkpoint.
    The recurrent part is constant in ``depth`` (tiny to ship) while the
    KV part grows linearly — the asymmetry the split-point steering
    planner exploits: shipping a *shorter* head cuts bytes almost
    proportionally, yet still carries a complete SSM state.
    """
    if depth <= 0:
        raise ValueError(f"transfer depth must be positive, got {depth}")
    return kv_bytes(config, depth) + model_recurrent_bytes(config)


def node_state_bytes(config: ModelConfig, kv_tokens: int, has_ssm_state: bool) -> int:
    """Bytes occupied by one radix-tree node's states.

    A node owns the KVs of the tokens on its incoming edge and, when it is a
    checkpoint, one full-model recurrent state.
    """
    total = kv_bytes(config, kv_tokens)
    if has_ssm_state:
        total += model_recurrent_bytes(config)
    return total


def block_entry_bytes(config: ModelConfig, block_size: int) -> int:
    """Bytes of one fine-grained token-block cache entry (vLLM+ style).

    Each block holds the KVs of ``block_size`` tokens *and* one recurrent
    checkpoint representing all tokens up to the block boundary (paper
    section 3): this per-block checkpoint is exactly what makes fine-grained
    checkpointing so expensive for hybrid models.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return kv_bytes(config, block_size) + model_recurrent_bytes(config)


def sequence_cache_footprint(config: ModelConfig, seq_len: int, block_size: int) -> int:
    """Total bytes a single sequence occupies under fine-grained checkpointing.

    Reproduces the Fig. 3b curve: KVs grow linearly with ``seq_len`` while the
    recurrent checkpoints contribute ``floor(seq_len / block_size)`` full-model
    states.  At 10K tokens with ``block_size=16`` the paper's 7B hybrid comes
    to ~17.4 GB.
    """
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")
    n_blocks = seq_len // block_size
    return kv_bytes(config, seq_len) + n_blocks * model_recurrent_bytes(config)
