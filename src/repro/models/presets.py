"""Named model configurations used throughout the paper's evaluation."""

from __future__ import annotations

from repro.models.config import ModelConfig


def hybrid_7b() -> ModelConfig:
    """The paper's main 7B hybrid: {4, 24, 28} {Attention, SSM, MLP} layers.

    ``D = 4096``, ``N = 128`` (Mamba2-class state dimension), FP16.
    """
    return ModelConfig(
        name="hybrid-7b",
        d_model=4096,
        d_state=128,
        n_attention=4,
        n_ssm=24,
        n_mlp=28,
        n_heads=32,
    )


def transformer_7b() -> ModelConfig:
    """A 7B pure Transformer (Llama-2-7B-like): 32 Attention + 32 MLP layers."""
    return ModelConfig(
        name="transformer-7b",
        d_model=4096,
        d_state=0,
        n_attention=32,
        n_ssm=0,
        n_mlp=32,
        n_heads=32,
    )


def mamba_7b() -> ModelConfig:
    """A 7B pure SSM model (Mamba-class): 64 SSM layers, no Attention/MLP."""
    return ModelConfig(
        name="mamba-7b",
        d_model=4096,
        d_state=128,
        n_attention=0,
        n_ssm=64,
        n_mlp=0,
        n_heads=32,
    )


def jamba_mini_like() -> ModelConfig:
    """A Jamba-1.5-Mini-shaped hybrid (12B active) with state dimension 128.

    Used by the paper for the real-hardware TTFT insight; here it feeds the
    latency model.  Layer ratio follows Jamba's 1:7 Attention:Mamba mix.
    """
    return ModelConfig(
        name="jamba-mini-like",
        d_model=4096,
        d_state=128,
        n_attention=4,
        n_ssm=28,
        n_mlp=32,
        n_heads=32,
    )


def tiny_test_model() -> ModelConfig:
    """A deliberately small hybrid for unit tests and the executable NumPy model."""
    return ModelConfig(
        name="tiny-test",
        d_model=64,
        d_state=16,
        n_attention=1,
        n_ssm=3,
        n_mlp=4,
        n_heads=4,
        vocab_size=256,
    )


def hybrid_with_composition(n_ssm: int, n_attention: int) -> ModelConfig:
    """7B-class hybrid with a custom (SSM, Attention) composition (Fig. 12a).

    The MLP count stays at the base model's 28 so that only the stateful-layer
    mix varies, matching the paper's sweep over
    ``(32,4), (30,5), (28,7), (24,12), (0,36)``.
    """
    base = hybrid_7b()
    if n_ssm == 0:
        # The pure-Transformer end of the sweep: d_state is irrelevant.
        return ModelConfig(
            name=f"hybrid-7b-s0a{n_attention}",
            d_model=base.d_model,
            d_state=0,
            n_attention=n_attention,
            n_ssm=0,
            n_mlp=base.n_mlp,
            n_heads=base.n_heads,
        )
    return base.with_composition(n_ssm, n_attention, name=f"hybrid-7b-s{n_ssm}a{n_attention}")


def hybrid_with_state_dim(d_state: int) -> ModelConfig:
    """7B hybrid with a custom SSM state dimension ``N`` (Fig. 12b sweep)."""
    return hybrid_7b().with_state_dim(d_state, name=f"hybrid-7b-N{d_state}")


PRESETS = {
    "hybrid-7b": hybrid_7b,
    "transformer-7b": transformer_7b,
    "mamba-7b": mamba_7b,
    "jamba-mini-like": jamba_mini_like,
    "tiny-test": tiny_test_model,
}


def get_preset(name: str) -> ModelConfig:
    """Look up a preset by name; raises ``KeyError`` with the known names."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown model preset {name!r}; known presets: {sorted(PRESETS)}"
        ) from None
