"""Model architecture descriptions and analytic cost models.

This subpackage encodes the per-layer FLOP and state-size formulas from
Table 1 / Appendix A of the Marconi paper.  Every caching policy and the
serving simulator consume :class:`~repro.models.config.ModelConfig` through
the helpers here, so the whole reproduction shares a single source of truth
for "how much compute does a prefix hit save" and "how many bytes does a
cache entry occupy".
"""

from repro.models.config import LayerType, ModelConfig
from repro.models.efficiency import (
    flop_efficiency,
    node_flop_efficiency,
    flops_saved_per_byte_attention,
    flops_saved_per_byte_ssm,
)
from repro.models.flops import (
    attention_prefill_flops,
    mlp_prefill_flops,
    ssm_prefill_flops,
    model_prefill_flops,
    model_suffix_prefill_flops,
    model_decode_flops_per_token,
    flop_breakdown,
)
from repro.models.memory import (
    kv_bytes_per_token,
    ssm_state_bytes,
    conv_state_bytes,
    recurrent_state_bytes,
    model_recurrent_bytes,
    kv_bytes,
    node_state_bytes,
    block_entry_bytes,
    sequence_cache_footprint,
)
from repro.models.presets import (
    hybrid_7b,
    transformer_7b,
    mamba_7b,
    jamba_mini_like,
    tiny_test_model,
    hybrid_with_composition,
    hybrid_with_state_dim,
    PRESETS,
    get_preset,
)

__all__ = [
    "LayerType",
    "ModelConfig",
    "attention_prefill_flops",
    "mlp_prefill_flops",
    "ssm_prefill_flops",
    "model_prefill_flops",
    "model_suffix_prefill_flops",
    "model_decode_flops_per_token",
    "flop_breakdown",
    "kv_bytes_per_token",
    "ssm_state_bytes",
    "conv_state_bytes",
    "recurrent_state_bytes",
    "model_recurrent_bytes",
    "kv_bytes",
    "node_state_bytes",
    "block_entry_bytes",
    "sequence_cache_footprint",
    "flop_efficiency",
    "node_flop_efficiency",
    "flops_saved_per_byte_attention",
    "flops_saved_per_byte_ssm",
    "hybrid_7b",
    "transformer_7b",
    "mamba_7b",
    "jamba_mini_like",
    "tiny_test_model",
    "hybrid_with_composition",
    "hybrid_with_state_dim",
    "PRESETS",
    "get_preset",
]
