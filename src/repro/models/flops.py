"""Per-layer prefill FLOP formulas (Table 1 of the paper).

All functions return floats (FLOP counts overflow int32 quickly and we only
ever consume them as ratios or divide them by hardware throughput).  ``L`` is
the sequence length, ``D`` the model dimension, ``N`` the SSM state dimension.

The three closed forms, copied from Table 1:

====================  =============================
Layer                 FLOPs to prefill ``L`` tokens
====================  =============================
Attention             ``8 L D^2 + 4 L^2 D``
MLP                   ``16 L D^2``
SSM                   ``12 L D^2 + 16 L D N + 10 L``
====================  =============================

Prefilling a *suffix* on top of a reused prefix of length ``h`` costs exactly
``flops(L) - flops(h)`` for every layer family: the linear terms subtract
trivially and the quadratic Attention term ``4 L^2 D - 4 h^2 D`` accounts for
the new tokens attending to the full ``L``-token context.
"""

from __future__ import annotations

from repro.models.config import LayerType, ModelConfig


def attention_prefill_flops(seq_len: int, d_model: int) -> float:
    """FLOPs for one Attention layer to prefill ``seq_len`` tokens."""
    length = float(seq_len)
    dim = float(d_model)
    return 8.0 * length * dim * dim + 4.0 * length * length * dim


def mlp_prefill_flops(seq_len: int, d_model: int) -> float:
    """FLOPs for one MLP layer to prefill ``seq_len`` tokens."""
    return 16.0 * float(seq_len) * float(d_model) ** 2


def ssm_prefill_flops(seq_len: int, d_model: int, d_state: int) -> float:
    """FLOPs for one SSM layer to prefill ``seq_len`` tokens."""
    length = float(seq_len)
    dim = float(d_model)
    state = float(d_state)
    return 12.0 * length * dim * dim + 16.0 * length * dim * state + 10.0 * length


_LAYER_FLOPS = {
    LayerType.ATTENTION: lambda L, cfg: attention_prefill_flops(L, cfg.d_model),
    LayerType.MLP: lambda L, cfg: mlp_prefill_flops(L, cfg.d_model),
    LayerType.SSM: lambda L, cfg: ssm_prefill_flops(L, cfg.d_model, cfg.d_state),
}


def layer_prefill_flops(layer: LayerType, seq_len: int, config: ModelConfig) -> float:
    """FLOPs for a single layer of the given type to prefill ``seq_len`` tokens."""
    return _LAYER_FLOPS[layer](seq_len, config)


def flop_breakdown(config: ModelConfig, seq_len: int) -> dict[LayerType, float]:
    """Total prefill FLOPs per layer family for ``seq_len`` tokens (Fig. 14)."""
    if seq_len < 0:
        raise ValueError(f"seq_len must be non-negative, got {seq_len}")
    counts = config.layer_counts()
    return {
        layer: counts[layer] * layer_prefill_flops(layer, seq_len, config)
        for layer in LayerType
    }


#: Exact-value memo for :func:`model_prefill_flops`.  The eviction scorer and
#: latency model call it thousands of times per simulated second with a
#: handful of distinct ``(config, seq_len)`` pairs, so we cache the *computed*
#: float (never a refactored closed form — float association differences would
#: shift golden-trace numbers).  Keyed by ``id(config)`` with a strong config
#: reference as an identity check, so a recycled id can never alias a stale
#: entry and lookups skip hashing the 11-field frozen dataclass.
_PREFILL_MEMO: dict[int, tuple[ModelConfig, dict[int, float]]] = {}
_PREFILL_MEMO_MAX_CONFIGS = 64


def model_prefill_flops(config: ModelConfig, seq_len: int) -> float:
    """Total FLOPs for the whole model to prefill ``seq_len`` tokens from scratch."""
    entry = _PREFILL_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        if len(_PREFILL_MEMO) >= _PREFILL_MEMO_MAX_CONFIGS:
            _PREFILL_MEMO.clear()
        entry = (config, {})
        _PREFILL_MEMO[id(config)] = entry
    per_len = entry[1]
    value = per_len.get(seq_len)
    if value is None:
        value = sum(flop_breakdown(config, seq_len).values())
        per_len[seq_len] = value
    return value


def prefill_flops_table(config: ModelConfig) -> dict[int, float]:
    """The live ``seq_len -> flops`` memo dict for ``config``.

    Hot callers (the eviction scorer) can probe this dict directly and fall
    back to :func:`model_prefill_flops` on a miss, skipping two call frames
    per lookup.  The dict is the memo itself: entries added by either path
    are shared.
    """
    entry = _PREFILL_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        if len(_PREFILL_MEMO) >= _PREFILL_MEMO_MAX_CONFIGS:
            _PREFILL_MEMO.clear()
        entry = (config, {})
        _PREFILL_MEMO[id(config)] = entry
    return entry[1]


def model_suffix_prefill_flops(
    config: ModelConfig, seq_len: int, reused_len: int
) -> float:
    """FLOPs to prefill tokens ``reused_len..seq_len`` on top of a cached prefix.

    ``reused_len == 0`` degenerates to a full prefill; ``reused_len == seq_len``
    costs zero.  The Attention term correctly charges the suffix tokens for
    attending to the entire context.
    """
    if not 0 <= reused_len <= seq_len:
        raise ValueError(
            f"need 0 <= reused_len <= seq_len, got reused_len={reused_len}, seq_len={seq_len}"
        )
    return model_prefill_flops(config, seq_len) - model_prefill_flops(config, reused_len)


def model_decode_flops_per_token(config: ModelConfig, context_len: int) -> float:
    """FLOPs to decode one token at the given context length.

    Derived as the marginal cost ``flops(L+1) - flops(L)``; used by the
    latency model for completeness (decode is memory-bound in practice, so the
    simulator's decode clock is dominated by a bandwidth term instead).
    """
    if context_len < 0:
        raise ValueError(f"context_len must be non-negative, got {context_len}")
    return model_prefill_flops(config, context_len + 1) - model_prefill_flops(
        config, context_len
    )
