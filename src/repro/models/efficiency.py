"""FLOP efficiency: compute saved per byte of cached state (Eq. 1, Table 1).

``flop_efficiency = total FLOPs across layers / memory of all stateful
layers' states``.  The numerator counts *every* layer family (MLP compute is
saved by a hit even though MLPs are stateless); the denominator counts only
stateful layers (Attention KVs + SSM states).
"""

from __future__ import annotations

from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops
from repro.models.memory import kv_bytes, model_recurrent_bytes


def flop_efficiency(config: ModelConfig, seq_len: int) -> float:
    """FLOPs saved per byte when reusing a full-sequence cache entry (Fig. 5).

    For a hybrid model the entry holds ``seq_len`` tokens of KVs for each
    Attention layer plus one recurrent checkpoint per SSM layer.
    """
    if seq_len <= 0:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    saved = model_prefill_flops(config, seq_len)
    state_bytes = kv_bytes(config, seq_len) + model_recurrent_bytes(config)
    return saved / state_bytes


def node_flop_efficiency(
    config: ModelConfig,
    node_seq_len: int,
    parent_seq_len: int,
    freeable_bytes: int,
    mode: str = "prefix_per_freed",
) -> float:
    """FLOP efficiency of one eviction candidate (radix-tree node).

    Eviction wants "compute savings destroyed per byte reclaimed".  Two
    numerator conventions are supported:

    * ``prefix_per_freed`` (default): a hit on this node saves the prefill
      of its entire prefix, so the numerator is ``flops(seq_len)``.  This is
      the Fig. 5 notion of an entry's FLOP efficiency and is what makes the
      score *trade short sequences for long ones* (Fig. 10a): a 20K-token
      conversation checkpoint scores an order of magnitude above a 2K one.
    * ``edge_delta``: the node's savings relative to its parent
      (``flops(seq_len) - flops(parent_seq_len)``), crediting each node only
      for its own edge.  Kept for the ablation bench; empirically it
      under-protects deep checkpoints whose edges are short (a conversation
      round appends few tokens relative to its context).

    The denominator is always the bytes eviction would actually reclaim:
    the full entry for a leaf, only the recurrent checkpoint for a
    single-child node (its KVs are absorbed by the child).
    """
    if not 0 <= parent_seq_len <= node_seq_len:
        raise ValueError(
            "need 0 <= parent_seq_len <= node_seq_len, got "
            f"parent={parent_seq_len}, node={node_seq_len}"
        )
    if freeable_bytes <= 0:
        return 0.0
    if mode == "prefix_per_freed":
        saved = model_prefill_flops(config, node_seq_len)
    elif mode == "edge_delta":
        saved = model_prefill_flops(config, node_seq_len) - model_prefill_flops(
            config, parent_seq_len
        )
    else:
        raise ValueError(f"unknown efficiency mode {mode!r}")
    return saved / freeable_bytes


def flops_saved_per_byte_attention(seq_len: int, d_model: int) -> float:
    """Closed form from Table 1 for one Attention layer: ``L + 2D``.

    Derived as ``(8 L D^2 + 4 L^2 D) / (4 L D)``.
    """
    if seq_len <= 0:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    return float(seq_len) + 2.0 * float(d_model)


def flops_saved_per_byte_ssm(seq_len: int, d_model: int, d_state: int) -> float:
    """Closed form from Table 1 for one SSM layer: ``L (6D/N + 8 + 5/(D N))``.

    Derived as ``(12 L D^2 + 16 L D N + 10 L) / (2 D N)``; for the paper's 7B
    hybrid (``D=4096, N=128``) this is ~``200 L``, i.e. the efficiency of SSM
    entries scales two orders of magnitude more steeply than Attention's.
    """
    if seq_len <= 0:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    dim = float(d_model)
    state = float(d_state)
    return float(seq_len) * (6.0 * dim / state + 8.0 + 5.0 / (dim * state))
