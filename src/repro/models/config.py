"""Architecture description for the models whose states we cache.

A :class:`ModelConfig` is a frozen value object: it names the layer
composition (how many Attention, SSM, and MLP layers) and the dimensions
that the cost model in :mod:`repro.models.flops` / :mod:`repro.models.memory`
needs.  The same object also carries the small set of extra hyperparameters
used by the executable NumPy model in :mod:`repro.nn` so that tests can run
one config through both the analytic and the executable paths.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class LayerType(str, enum.Enum):
    """The three layer families the paper's cost model distinguishes."""

    ATTENTION = "attention"
    SSM = "ssm"
    MLP = "mlp"


@dataclass(frozen=True)
class ModelConfig:
    """Layer composition and dimensions of a (possibly hybrid) LLM.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"hybrid-7b"``.
    d_model:
        Model (hidden) dimension ``D``.
    d_state:
        SSM state/feature dimension ``N`` (ignored when ``n_ssm == 0``).
    n_attention, n_ssm, n_mlp:
        Number of layers of each type.
    dtype_bytes:
        Bytes per parameter/state element; 2 for the paper's FP16 setting.
    expand:
        SSM inner-dimension expansion factor (``d_inner = expand * d_model``),
        used for the conv1d state size and by :mod:`repro.nn`.
    d_conv:
        Causal conv1d kernel width inside each SSM layer.
    n_heads:
        Attention head count (only used by the executable model).
    vocab_size:
        Vocabulary size (only used by the executable model).
    """

    name: str
    d_model: int
    d_state: int
    n_attention: int
    n_ssm: int
    n_mlp: int
    dtype_bytes: int = 2
    expand: int = 2
    d_conv: int = 4
    n_heads: int = 8
    vocab_size: int = 32000

    def __post_init__(self) -> None:
        if self.d_model <= 0:
            raise ValueError(f"d_model must be positive, got {self.d_model}")
        if self.n_ssm > 0 and self.d_state <= 0:
            raise ValueError(
                f"d_state must be positive for a model with SSM layers, got {self.d_state}"
            )
        if min(self.n_attention, self.n_ssm, self.n_mlp) < 0:
            raise ValueError("layer counts must be non-negative")
        if self.n_attention + self.n_ssm + self.n_mlp == 0:
            raise ValueError("model must have at least one layer")
        if self.dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be positive, got {self.dtype_bytes}")
        if self.n_attention > 0 and self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by n_heads={self.n_heads}"
            )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def d_inner(self) -> int:
        """Inner dimension of SSM layers (``expand * d_model``)."""
        return self.expand * self.d_model

    @property
    def n_layers(self) -> int:
        """Total layer count across all families."""
        return self.n_attention + self.n_ssm + self.n_mlp

    @property
    def has_recurrent_layers(self) -> bool:
        """True when the model contains at least one in-place-updated layer.

        This is the property that flips the cache-hit semantics: with any
        recurrent layer present, prefix reuse is "all or nothing" and only
        exact-match SSM checkpoints can serve a hit (paper section 3).
        """
        return self.n_ssm > 0

    @property
    def is_pure_transformer(self) -> bool:
        """True when the model has no recurrent layers at all."""
        return self.n_ssm == 0

    @property
    def attention_ssm_ratio(self) -> float:
        """Attention:SSM layer ratio, ``inf`` for pure Transformers."""
        if self.n_ssm == 0:
            return float("inf")
        return self.n_attention / self.n_ssm

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_state_dim(self, d_state: int, name: str | None = None) -> "ModelConfig":
        """Return a copy with a different SSM state dimension ``N``."""
        return dataclasses.replace(
            self, d_state=d_state, name=name or f"{self.name}-N{d_state}"
        )

    def with_composition(
        self, n_ssm: int, n_attention: int, name: str | None = None
    ) -> "ModelConfig":
        """Return a copy with a different (SSM, Attention) layer composition."""
        return dataclasses.replace(
            self,
            n_ssm=n_ssm,
            n_attention=n_attention,
            name=name or f"{self.name}-s{n_ssm}a{n_attention}",
        )

    def layer_counts(self) -> dict[LayerType, int]:
        """Map each :class:`LayerType` to its layer count."""
        return {
            LayerType.ATTENTION: self.n_attention,
            LayerType.SSM: self.n_ssm,
            LayerType.MLP: self.n_mlp,
        }
