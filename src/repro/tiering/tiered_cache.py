"""`TieredMarconiCache`: Marconi's cache with a demote/promote second tier.

The primary tier is the unmodified Marconi radix-tree cache (admission,
FLOP-aware eviction, tree mechanics).  Two hooks add the hierarchy:

* **Demotion** — when the primary tier evicts a node holding a recurrent
  checkpoint, a self-contained copy of the prefix state (checkpoint plus
  the full prefix's KVs) is offered to the second-tier store instead of
  being discarded.
* **Promotion** — a lookup that would miss (or hit shallower) in the
  primary tree first probes the second tier for a deeper exact prefix; on
  a match the checkpoint is re-admitted into the tree, the request is
  served from it, and the fetched bytes are reported as second-tier bytes
  so the engine prices them at the slower bandwidth.

Demotion only applies to checkpointed prefixes: with recurrent layers in
the model those are the only entries that can serve an "all or nothing"
hit on their own, and self-containment (KVs included) is what makes the
promoted state usable without the tree context it left behind.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.eviction import EvictionCandidate
from repro.core.interfaces import as_token_array
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops
from repro.models.memory import (
    kv_bytes_per_token,
    model_recurrent_bytes,
    transfer_state_bytes,
)
from repro.tiering.secondary import SecondaryEntry, SecondaryStore


class TieredMarconiCache(MarconiCache):
    """Two-tier prefix cache: a Marconi primary plus a flat secondary.

    Parameters
    ----------
    model, capacity_bytes:
        As for :class:`~repro.core.cache.MarconiCache`; ``capacity_bytes``
        is the *primary* tier budget.
    secondary_bytes:
        Second-tier budget.  Zero disables the hierarchy (the cache then
        behaves exactly like a single-tier Marconi cache).
    secondary_policy, secondary_alpha:
        Eviction configuration of the second tier (see
        :class:`~repro.tiering.secondary.SecondaryStore`).
    """

    def __init__(
        self,
        model: ModelConfig,
        capacity_bytes: int,
        secondary_bytes: int,
        *,
        secondary_policy: str = "lru",
        secondary_alpha: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(model, capacity_bytes, **kwargs)
        self._secondary_config = dict(policy=secondary_policy, alpha=secondary_alpha)
        self.secondary = SecondaryStore(secondary_bytes, **self._secondary_config)

    # ------------------------------------------------------------------
    # Tier accounting
    # ------------------------------------------------------------------
    @property
    def secondary_used_bytes(self) -> int:
        return self.secondary.used_bytes

    @property
    def total_used_bytes(self) -> int:
        """Bytes held across both tiers."""
        return self.used_bytes + self.secondary.used_bytes

    def reset(self) -> None:
        super().reset()
        # reset() is called from MarconiCache.__init__ paths only after
        # construction; guard for the base constructor ordering.
        if hasattr(self, "secondary"):
            self.secondary.clear()

    # ------------------------------------------------------------------
    # Demotion (primary eviction hook)
    # ------------------------------------------------------------------
    def _entry_bytes(self, seq_len: int) -> int:
        """Self-contained footprint of a demoted prefix of ``seq_len`` tokens.

        Identical to the steering planner's transfer payload sizing —
        a demoted entry and a shipped prefix carry the same state.
        """
        return transfer_state_bytes(self.model, seq_len)

    def _apply_eviction(self, victim: EvictionCandidate) -> None:
        node = victim.node
        if (
            node.has_ssm_state
            and self.model.has_recurrent_layers
            and self.secondary.capacity_bytes > 0
        ):
            tokens = node.path_tokens()
            nbytes = self._entry_bytes(node.seq_len)
            accepted = self.secondary.insert(
                tokens,
                nbytes,
                now=node.last_access,
                flop_efficiency=model_prefill_flops(self.model, node.seq_len) / nbytes,
                payload=node.state_payload,
            )
            key = "demotions" if accepted else "demotions_rejected"
            self._stats.extra[key] = self._stats.extra.get(key, 0) + 1
        super()._apply_eviction(victim)

    # ------------------------------------------------------------------
    # Cross-replica state transfers (cluster steering hook)
    # ------------------------------------------------------------------
    def receive_state_transfer(
        self, tokens: np.ndarray, nbytes: int, now: float, payload: Any = None
    ) -> bool:
        """Accept a self-contained prefix state copied from another replica.

        The span lands in the *second* tier — the same place local
        demotions go — so the very next request extending this prefix
        promotes it through the standard tiering path and pays the
        second-tier fetch bandwidth for it.  Returns False when the model
        cannot use self-contained states (no recurrent layers) or the
        second tier is disabled or rejects the entry.
        """
        tokens = as_token_array(tokens)
        if nbytes <= 0:
            raise ValueError(f"transfer nbytes must be positive, got {nbytes}")
        if (
            len(tokens) == 0
            or not self.model.has_recurrent_layers
            or self.secondary.capacity_bytes <= 0
        ):
            self._stats.extra["transfers_rejected"] = (
                self._stats.extra.get("transfers_rejected", 0) + 1
            )
            return False
        accepted = self.secondary.receive_transfer(
            tokens,
            int(nbytes),
            now,
            flop_efficiency=model_prefill_flops(self.model, len(tokens)) / int(nbytes),
            payload=payload,
        )
        key = "transfers_in" if accepted else "transfers_rejected"
        self._stats.extra[key] = self._stats.extra.get(key, 0) + 1
        return accepted

    # ------------------------------------------------------------------
    # Promotion (begin hook)
    # ------------------------------------------------------------------
    def _begin_session(self, tokens: np.ndarray, now: float):
        tokens = as_token_array(tokens)
        if len(tokens) == 0:
            raise ValueError("cannot look up an empty token sequence")
        promoted: Optional[SecondaryEntry] = None
        if self.model.has_recurrent_layers and self.secondary.capacity_bytes > 0:
            match = self.tree.match(tokens)
            primary_hit = match.deepest_ssm_node(max_seq_len=len(tokens) - 1)
            primary_len = primary_hit.seq_len if primary_hit is not None else 0
            entry = self.secondary.longest_match(tokens, len(tokens) - 1, now)
            if entry is not None and entry.seq_len > primary_len:
                if self._promote(entry, now):
                    promoted = entry

        session = super()._begin_session(tokens, now)
        if promoted is not None:
            # The whole reused state came out of the second tier.
            result = session.result
            result.reused_secondary_bytes = min(promoted.nbytes, result.reused_bytes)
            self._stats.extra["secondary_hits"] = (
                self._stats.extra.get("secondary_hits", 0) + 1
            )
        return session

    def _promote(self, entry: SecondaryEntry, now: float) -> bool:
        """Re-admit a demoted checkpoint into the primary tree.

        Returns False (leaving the tree untouched) when the primary tier
        cannot make room — the entry then stays in the second tier and the
        request proceeds as a plain miss.
        """
        outcome = self.tree.insert(entry.tokens, now)
        end = outcome.end_node
        want_checkpoint = not end.has_ssm_state
        kv_cost = outcome.new_edge_tokens * kv_bytes_per_token(self.model)
        checkpoint_cost = model_recurrent_bytes(self.model) if want_checkpoint else 0

        self.tree.pin_path(end)
        fits = self._ensure_free(kv_cost + checkpoint_cost)
        self.tree.unpin_path(end)
        if not fits:
            self._undo_insert(outcome)
            self._stats.extra["promotions_failed"] = (
                self._stats.extra.get("promotions_failed", 0) + 1
            )
            return False

        self._used += kv_cost + checkpoint_cost
        if want_checkpoint:
            self.tree.set_checkpoint(end)
        self.tree.refresh_access(end, now)
        if self.store_states:
            end.state_payload = entry.payload
        self.secondary.remove(entry.tokens)
        self._stats.extra["promotions"] = self._stats.extra.get("promotions", 0) + 1
        return True

    def _undo_insert(self, outcome) -> None:
        """Structurally revert a just-performed tree insert."""
        if outcome.new_leaf is not None and outcome.new_leaf.parent is not None:
            self.tree.remove_leaf(outcome.new_leaf)
        split = outcome.split_node
        if (
            split is not None
            and split.parent is not None
            and split.n_children == 1
            and not split.has_ssm_state
            and not split.is_pinned
        ):
            self.tree.merge_into_child(split)
