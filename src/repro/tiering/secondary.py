"""The second-tier store: self-contained prefix states keyed by exact tokens.

Entries are *flat* — no radix structure — because a demoted prefix is a
sealed blob: the recurrent checkpoint plus the KVs of every token in the
prefix.  Lookup asks one question: what is the deepest stored prefix of a
query that fits under ``max_len``?  With entries indexed by ``(length,
token-bytes)`` the store answers by probing only the distinct stored
lengths, each with a single hash lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.interfaces import as_token_array


@dataclass
class SecondaryEntry:
    """One demoted prefix: its tokens, byte footprint, and bookkeeping."""

    tokens: np.ndarray
    nbytes: int
    last_access: float
    flop_efficiency: float
    created_at: float
    hits: int = 0
    payload: Any = None

    @property
    def seq_len(self) -> int:
        return len(self.tokens)


@dataclass
class _StoreStats:
    insertions: int = 0
    hits: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    rejected: int = 0
    # Entries that arrived over the cluster interconnect (cross-replica
    # state transfers) rather than by local demotion.
    transfers_in: int = 0
    transfer_bytes_in: int = 0


class SecondaryStore:
    """Capacity-bounded flat store of demoted prefix states.

    Parameters
    ----------
    capacity_bytes:
        Second-tier budget.
    policy:
        ``"lru"`` evicts by last access; ``"flop_aware"`` scores entries
        with the same rank-normalized ``recency + alpha * flop_efficiency``
        utility as the primary tier, so the two tiers can share Marconi's
        eviction philosophy end to end.
    alpha:
        FLOP-efficiency weight for the ``flop_aware`` policy.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        policy: str = "lru",
        alpha: float = 1.0,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be non-negative, got {capacity_bytes}")
        if policy not in ("lru", "flop_aware"):
            raise ValueError(f"policy must be 'lru' or 'flop_aware', got {policy!r}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.capacity_bytes = int(capacity_bytes)
        self.policy = policy
        self.alpha = alpha
        self._by_length: dict[int, dict[bytes, SecondaryEntry]] = {}
        self._used = 0
        self.stats = _StoreStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def n_entries(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def __contains__(self, tokens: Any) -> bool:
        arr = as_token_array(tokens)
        bucket = self._by_length.get(len(arr))
        return bucket is not None and arr.tobytes() in bucket

    def iter_entries(self):
        """Yield every stored entry (no particular order)."""
        for bucket in self._by_length.values():
            yield from bucket.values()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        tokens: np.ndarray,
        nbytes: int,
        now: float,
        *,
        flop_efficiency: float = 0.0,
        payload: Any = None,
    ) -> bool:
        """Store a demoted prefix; returns False when it cannot fit.

        Re-inserting an existing prefix refreshes its bookkeeping (the
        newer demotion wins), charging only the byte delta.
        """
        arr = as_token_array(tokens)
        if len(arr) == 0:
            raise ValueError("cannot store an empty prefix")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        key = arr.tobytes()
        bucket = self._by_length.setdefault(len(arr), {})
        existing = bucket.pop(key, None)
        if existing is not None:
            self._used -= existing.nbytes
        if nbytes > self.capacity_bytes:
            self.stats.rejected += 1
            self._drop_empty_bucket(len(arr))
            return False
        self._evict_until(self.capacity_bytes - nbytes, protect=key)
        bucket = self._by_length.setdefault(len(arr), {})
        bucket[key] = SecondaryEntry(
            tokens=arr.copy(),
            nbytes=int(nbytes),
            last_access=now,
            flop_efficiency=flop_efficiency,
            created_at=now,
            payload=payload,
        )
        self._used += int(nbytes)
        self.stats.insertions += 1
        return True

    def receive_transfer(
        self,
        tokens: np.ndarray,
        nbytes: int,
        now: float,
        *,
        flop_efficiency: float = 0.0,
        payload: Any = None,
    ) -> bool:
        """Land a cross-replica state transfer in this store.

        Same admission semantics as :meth:`insert` (the newest copy wins,
        capacity is enforced by eviction), tracked separately so cluster
        telemetry can tell replicated state from locally demoted state.
        """
        accepted = self.insert(
            tokens, nbytes, now, flop_efficiency=flop_efficiency, payload=payload
        )
        if accepted:
            self.stats.transfers_in += 1
            self.stats.transfer_bytes_in += int(nbytes)
        return accepted

    def remove(self, tokens: np.ndarray) -> Optional[SecondaryEntry]:
        """Remove and return the entry for an exact prefix, if present."""
        arr = as_token_array(tokens)
        bucket = self._by_length.get(len(arr))
        if bucket is None:
            return None
        entry = bucket.pop(arr.tobytes(), None)
        if entry is not None:
            self._used -= entry.nbytes
            self._drop_empty_bucket(len(arr))
        return entry

    def longest_match(self, tokens: np.ndarray, max_len: int, now: float) -> Optional[SecondaryEntry]:
        """Deepest stored prefix of ``tokens`` with length <= ``max_len``.

        A match refreshes the entry's recency.
        """
        arr = as_token_array(tokens)
        limit = min(max_len, len(arr))
        for length in sorted(self._by_length, reverse=True):
            if length > limit:
                continue
            bucket = self._by_length[length]
            entry = bucket.get(arr[:length].tobytes())
            if entry is not None:
                entry.last_access = now
                entry.hits += 1
                self.stats.hits += 1
                return entry
        return None

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._by_length.clear()
        self._used = 0
        self.stats = _StoreStats()

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _drop_empty_bucket(self, length: int) -> None:
        if not self._by_length.get(length):
            self._by_length.pop(length, None)

    def _scores(self, entries: list[SecondaryEntry]) -> list[float]:
        if self.policy == "lru" or len(entries) == 1:
            return [e.last_access for e in entries]
        recency = _ranks([e.last_access for e in entries])
        efficiency = _ranks([e.flop_efficiency for e in entries])
        return [r + self.alpha * e for r, e in zip(recency, efficiency)]

    def _evict_until(self, budget: int, protect: bytes | None = None) -> None:
        while self._used > budget:
            entries = [
                e for e in self.iter_entries() if protect is None or e.tokens.tobytes() != protect
            ]
            if not entries:
                return
            scores = self._scores(entries)
            victim = min(zip(scores, (e.created_at for e in entries), entries),
                         key=lambda item: (item[0], item[1]))[2]
            self.remove(victim.tokens)
            self.stats.evictions += 1
            self.stats.evicted_bytes += victim.nbytes


def _ranks(values: list[float]) -> list[float]:
    """Tie-aware average-rank normalization into (0, 1] (mirrors the primary tier)."""
    n = len(values)
    if n == 1:
        return [1.0]
    order = sorted(range(n), key=values.__getitem__)
    out = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            out[order[k]] = avg / n
        i = j + 1
    return out
