"""Hierarchical (two-tier) prefix caching.

CachedAttention and Pensieve (section 6 of the paper) show that prefix
states evicted from the fast tier still carry value if a slower, larger
tier can hold them.  This package extends Marconi's single-tier cache with
a second-tier store:

* evicting a *checkpointed* prefix from the primary tier demotes a
  self-contained copy (recurrent states + the full prefix's KVs) into the
  :class:`~repro.tiering.secondary.SecondaryStore`;
* a lookup that misses the primary tree but matches a demoted prefix
  re-admits the checkpoint (promotion) and serves the hit at the latency
  model's slower secondary fetch bandwidth.

Self-containment is the honest cost of the second tier: a demoted entry
cannot share KV bytes with the radix tree it left, mirroring how real
hierarchical caches copy whole state blobs across memory tiers.
"""

from repro.tiering.secondary import SecondaryEntry, SecondaryStore
from repro.tiering.tiered_cache import TieredMarconiCache

__all__ = ["SecondaryStore", "SecondaryEntry", "TieredMarconiCache"]
