"""Token selection for generation."""

from __future__ import annotations

import numpy as np


def greedy_token(logits: np.ndarray) -> int:
    """Deterministic argmax over a [V] logit vector (first index on ties)."""
    if logits.ndim != 1:
        raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
    return int(np.argmax(logits))


def sample_token(
    logits: np.ndarray, rng: np.random.Generator, temperature: float = 1.0
) -> int:
    """Temperature sampling over a [V] logit vector."""
    if temperature <= 0:
        return greedy_token(logits)
    scaled = logits / temperature
    scaled -= scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))
