"""Causal multi-head self-attention with an appendable KV cache."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.states import KVState


class AttentionLayer:
    """Multi-head attention over new tokens plus a cached prefix.

    Weights are square projections [D, D]; the layer is pre-norm'd and
    residual-added by :class:`repro.nn.hybrid.HybridModel`.
    """

    def __init__(self, d_model: int, n_heads: int, rng: np.random.Generator) -> None:
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        scale = 1.0 / np.sqrt(d_model)
        self.wq = rng.normal(0.0, scale, (d_model, d_model))
        self.wk = rng.normal(0.0, scale, (d_model, d_model))
        self.wv = rng.normal(0.0, scale, (d_model, d_model))
        self.wo = rng.normal(0.0, scale, (d_model, d_model))

    def init_state(self) -> KVState:
        return KVState.empty(self.n_heads, self.head_dim)

    def forward(self, x: np.ndarray, state: KVState) -> tuple[np.ndarray, KVState]:
        """Attend ``x`` [T, D] to the cached prefix plus itself (causal).

        Returns the output [T, D] and the extended KV state.  The input
        state is never mutated — a cached payload stays valid after reuse.
        """
        n_new = x.shape[0]
        past = state.seq_len

        def split_heads(t: np.ndarray) -> np.ndarray:
            return t.reshape(n_new, self.n_heads, self.head_dim)

        q = split_heads(x @ self.wq)
        k_new = split_heads(x @ self.wk)
        v_new = split_heads(x @ self.wv)
        new_state = state.appended(k_new, v_new)

        # [H, T, S] attention scores over past + new timesteps.
        q_h = q.transpose(1, 0, 2)
        k_h = new_state.k.transpose(1, 2, 0)
        scores = (q_h @ k_h) / np.sqrt(self.head_dim)

        # Causal mask: new token i (global position past+i) may attend to
        # global positions <= past+i.
        total = past + n_new
        positions = np.arange(total)[None, :]
        query_positions = (past + np.arange(n_new))[:, None]
        mask = positions > query_positions
        scores = np.where(mask[None, :, :], -np.inf, scores)

        weights = softmax(scores, axis=-1)
        v_h = new_state.v.transpose(1, 0, 2)  # [H, S, Dh]
        context = weights @ v_h  # [H, T, Dh]
        merged = context.transpose(1, 0, 2).reshape(n_new, self.d_model)
        return merged @ self.wo, new_state
