"""Model-state containers: per-layer KV caches and recurrent states.

These are the objects the prefix cache stores as payloads.  They embody the
paper's core asymmetry:

* :class:`KVState` has a sequence dimension — it *can* be truncated to
  represent any prefix of the tokens it covers.
* :class:`RecurrentState` is fixed-size and updated in place — it represents
  exactly the sequence that produced it and nothing shorter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np


@dataclass
class KVState:
    """KV cache of one attention layer: ``k``/``v`` of shape [T, H, Dh]."""

    k: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.k.shape != self.v.shape:
            raise ValueError(f"k/v shape mismatch: {self.k.shape} vs {self.v.shape}")
        if self.k.ndim != 3:
            raise ValueError(f"KV tensors must be [T, H, Dh], got {self.k.shape}")

    @classmethod
    def empty(cls, n_heads: int, head_dim: int, dtype=np.float64) -> "KVState":
        """A zero-length KV cache (before any token is processed)."""
        shape = (0, n_heads, head_dim)
        return cls(k=np.zeros(shape, dtype=dtype), v=np.zeros(shape, dtype=dtype))

    @property
    def seq_len(self) -> int:
        return self.k.shape[0]

    @property
    def nbytes(self) -> int:
        return self.k.nbytes + self.v.nbytes

    def clone(self) -> "KVState":
        """Deep copy (cached payloads must be immune to later decodes)."""
        return KVState(k=self.k.copy(), v=self.v.copy())

    def appended(self, k_new: np.ndarray, v_new: np.ndarray) -> "KVState":
        """A new state with extra timesteps appended (originals untouched)."""
        return KVState(
            k=np.concatenate([self.k, k_new], axis=0),
            v=np.concatenate([self.v, v_new], axis=0),
        )

    def trimmed(self, length: int) -> "KVState":
        """The KV prefix covering the first ``length`` tokens.

        This is the tensor-slicing rollback that is possible for attention
        states and *impossible* for recurrent states (paper section 2.2).
        """
        if not 0 <= length <= self.seq_len:
            raise ValueError(f"cannot trim KV of length {self.seq_len} to {length}")
        return KVState(k=self.k[:length].copy(), v=self.v[:length].copy())


@dataclass
class RecurrentState:
    """One SSM layer's state: conv window [d_conv-1, d_inner] + SSM [d_inner, N]."""

    conv: np.ndarray
    ssm: np.ndarray

    def __post_init__(self) -> None:
        if self.conv.ndim != 2 or self.ssm.ndim != 2:
            raise ValueError("conv and ssm states must be 2-D")
        if self.conv.shape[1] != self.ssm.shape[0]:
            raise ValueError(
                f"conv width {self.conv.shape[1]} != ssm channels {self.ssm.shape[0]}"
            )

    @classmethod
    def zeros(
        cls, d_inner: int, d_state: int, d_conv: int, dtype=np.float64
    ) -> "RecurrentState":
        """The all-zero initial recurrent state."""
        return cls(
            conv=np.zeros((d_conv - 1, d_inner), dtype=dtype),
            ssm=np.zeros((d_inner, d_state), dtype=dtype),
        )

    @property
    def nbytes(self) -> int:
        return self.conv.nbytes + self.ssm.nbytes

    def clone(self) -> "RecurrentState":
        """Deep copy (recurrent states are updated in place downstream)."""
        return RecurrentState(conv=self.conv.copy(), ssm=self.ssm.copy())


LayerState = Union[KVState, RecurrentState, None]


@dataclass
class ModelState:
    """All layers' states after processing ``seq_len`` tokens."""

    layers: list[LayerState]
    seq_len: int

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.layers if s is not None)

    def clone(self) -> "ModelState":
        """Deep copy of every layer state."""
        return ModelState(
            layers=[s.clone() if s is not None else None for s in self.layers],
            seq_len=self.seq_len,
        )

    def kv_state(self, layer_index: int) -> Optional[KVState]:
        """The KV cache of layer ``layer_index``, if it is an attention layer."""
        state = self.layers[layer_index]
        return state if isinstance(state, KVState) else None
