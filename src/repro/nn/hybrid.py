"""The assembled hybrid model with checkpointing prefill (section 4.1).

``HybridModel.prefill`` supports the paper's two mechanisms for obtaining
recurrent states at interior positions:

* ``mode="chunked"`` — chunked state passing: the sequence is processed in
  fixed-size chunks and checkpoints snap to the largest chunk boundary at
  or before each requested position ("this approach may miss some prefix
  caching opportunities within a chunk but introduces minimal runtime
  overhead").
* ``mode="chunked_rollforward"`` — chunked state passing plus the paper's
  optional refinement: "custom kernels can be developed to quickly roll the
  state forward by a few tokens to reach the exact location".  Checkpoints
  snap to the chunk boundary and are then rolled forward through at most
  ``chunk_size - 1`` extra tokens, landing exactly on the requested
  positions at a small recompute cost.
* ``mode="two_pass"`` / ``mode="exact"`` — the prefill is split exactly at
  each requested position (the two-pass prefill for models without chunked
  state passing; functionally the first pass ends at the checkpoint and the
  second resumes from it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import LayerType, ModelConfig
from repro.nn.attention import AttentionLayer
from repro.nn.functional import rmsnorm
from repro.nn.mlp import MLPLayer
from repro.nn.sampling import greedy_token
from repro.nn.ssm import SSMLayer
from repro.nn.states import KVState, ModelState, RecurrentState


def layer_sequence(config: ModelConfig) -> list[LayerType]:
    """Deterministic interleaving of the configured layer counts.

    Attention layers are spread evenly among the stateful (mixer) slots —
    hybrid models "mix in one Attention layer for every 6-10 SSM layers" —
    and MLPs are interleaved round-robin across the whole stack.
    """
    n_mixers = config.n_attention + config.n_ssm
    mixers: list[LayerType] = []
    if n_mixers > 0:
        if config.n_attention == 0:
            mixers = [LayerType.SSM] * config.n_ssm
        elif config.n_ssm == 0:
            mixers = [LayerType.ATTENTION] * config.n_attention
        else:
            # Place attention at evenly spaced mixer indices.
            stride = n_mixers / config.n_attention
            attention_slots = {int(i * stride + stride / 2) for i in range(config.n_attention)}
            # Guard against rounding collisions.
            while len(attention_slots) < config.n_attention:
                attention_slots.add(max(attention_slots) + 1)
            mixers = [
                LayerType.ATTENTION if i in attention_slots else LayerType.SSM
                for i in range(n_mixers)
            ]
    sequence: list[LayerType] = []
    mlp_left = config.n_mlp
    for i, mixer in enumerate(mixers):
        sequence.append(mixer)
        # Interleave MLPs proportionally after mixers.
        target = round(config.n_mlp * (i + 1) / max(1, n_mixers))
        while config.n_mlp - mlp_left < target and mlp_left > 0:
            sequence.append(LayerType.MLP)
            mlp_left -= 1
    sequence.extend([LayerType.MLP] * mlp_left)
    assert sequence.count(LayerType.ATTENTION) == config.n_attention
    assert sequence.count(LayerType.SSM) == config.n_ssm
    assert sequence.count(LayerType.MLP) == config.n_mlp
    return sequence


@dataclass
class PrefillResult:
    """Output of a checkpointing prefill."""

    logits: np.ndarray  # [T, V] logits of the processed segment's tokens
    state: ModelState
    checkpoints: dict[int, ModelState] = field(default_factory=dict)


class HybridModel:
    """A small but complete hybrid LLM built from a :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = rng.normal(0.0, 0.02, (config.vocab_size, config.d_model))
        self.sequence = layer_sequence(config)
        self.layers: list[object] = []
        self.norms: list[np.ndarray] = []
        for layer_type in self.sequence:
            if layer_type is LayerType.ATTENTION:
                self.layers.append(AttentionLayer(config.d_model, config.n_heads, rng))
            elif layer_type is LayerType.SSM:
                self.layers.append(
                    SSMLayer(
                        config.d_model,
                        config.d_state,
                        rng,
                        expand=config.expand,
                        d_conv=config.d_conv,
                    )
                )
            else:
                self.layers.append(MLPLayer(config.d_model, rng))
            self.norms.append(np.ones(config.d_model))
        self.final_norm = np.ones(config.d_model)

    # ------------------------------------------------------------------
    # Core forward
    # ------------------------------------------------------------------
    def init_state(self) -> ModelState:
        layers = []
        for layer in self.layers:
            if isinstance(layer, (AttentionLayer, SSMLayer)):
                layers.append(layer.init_state())
            else:
                layers.append(None)
        return ModelState(layers=layers, seq_len=0)

    def forward(
        self, tokens: np.ndarray, state: ModelState
    ) -> tuple[np.ndarray, ModelState]:
        """Process ``tokens`` [T] from ``state``; returns [T, V] logits.

        The input state is never mutated, so cached payloads can be reused
        any number of times.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or len(tokens) == 0:
            raise ValueError("tokens must be a non-empty 1-D array")
        x = self.embedding[tokens]
        new_layers: list = []
        for layer, norm, layer_state in zip(self.layers, self.norms, state.layers):
            normed = rmsnorm(x, norm)
            if isinstance(layer, AttentionLayer):
                assert isinstance(layer_state, KVState)
                out, new_state = layer.forward(normed, layer_state)
                new_layers.append(new_state)
            elif isinstance(layer, SSMLayer):
                assert isinstance(layer_state, RecurrentState)
                out, new_state = layer.forward(normed, layer_state)
                new_layers.append(new_state)
            else:
                out = layer.forward(normed)
                new_layers.append(None)
            x = x + out
        x = rmsnorm(x, self.final_norm)
        logits = x @ self.embedding.T
        return logits, ModelState(layers=new_layers, seq_len=state.seq_len + len(tokens))

    # ------------------------------------------------------------------
    # Checkpointing prefill (section 4.1)
    # ------------------------------------------------------------------
    def prefill(
        self,
        tokens: np.ndarray,
        state: ModelState | None = None,
        *,
        checkpoint_positions: tuple[int, ...] = (),
        mode: str = "exact",
        chunk_size: int = 64,
    ) -> PrefillResult:
        """Prefill ``tokens`` from ``state``, checkpointing along the way.

        ``checkpoint_positions`` are *global* prefix lengths (tokens since
        the sequence start, i.e. ``state.seq_len`` counts) strictly inside
        the processed range.  In ``chunked`` mode each checkpoint snaps to
        the largest multiple of ``chunk_size`` (measured from the segment
        start) at or below the requested position; the returned dict is
        keyed by the positions actually materialized.  In
        ``chunked_rollforward`` mode the snapped states are additionally
        rolled forward to the exact requested positions, so the dict is
        keyed by the requested positions themselves.
        """
        if mode not in ("exact", "two_pass", "chunked", "chunked_rollforward"):
            raise ValueError(f"unknown prefill mode {mode!r}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        state = state.clone() if state is not None else self.init_state()
        initial = state
        start = state.seq_len
        end = start + len(tokens)
        requested = sorted(set(checkpoint_positions))
        for position in requested:
            if not start < position <= end:
                raise ValueError(
                    f"checkpoint position {position} outside prefill range "
                    f"({start}, {end}]"
                )
        if mode in ("chunked", "chunked_rollforward"):
            cut_positions = sorted(
                {
                    start + ((p - start) // chunk_size) * chunk_size
                    for p in requested
                }
                - {start}
            )
        else:
            cut_positions = requested

        logits_parts: list[np.ndarray] = []
        checkpoints: dict[int, ModelState] = {}
        cursor = start
        current = state
        for cut in cut_positions + [end]:
            if cut == cursor:
                # A chunk-aligned request that collapsed onto the segment
                # start (or a duplicate cut): snapshot without processing.
                if cut != end and cut != start:
                    checkpoints[cut] = current.clone()
                continue
            segment = tokens[cursor - start : cut - start]
            logits, current = self.forward(segment, current)
            logits_parts.append(logits)
            if cut != end:
                checkpoints[cut] = current.clone()
            cursor = cut
        # A checkpoint exactly at the end of the prefill is the final state.
        if end in cut_positions:
            checkpoints[end] = current.clone()
        if mode == "chunked_rollforward":
            checkpoints = self._roll_checkpoints_forward(
                tokens, initial, current, checkpoints, requested, start, end, chunk_size
            )
        return PrefillResult(
            logits=np.concatenate(logits_parts, axis=0),
            state=current,
            checkpoints=checkpoints,
        )

    def _roll_checkpoints_forward(
        self,
        tokens: np.ndarray,
        initial: ModelState,
        final: ModelState,
        snapped: dict[int, ModelState],
        requested: list[int],
        start: int,
        end: int,
        chunk_size: int,
    ) -> dict[int, ModelState]:
        """Roll chunk-boundary states forward to the exact requested positions.

        Each requested position ``p`` is reached by re-processing the at
        most ``chunk_size - 1`` tokens between its snapped boundary and
        ``p`` — the recompute the paper's optional custom kernel performs.
        ``forward`` never mutates its input state, so a boundary state can
        seed several roll-forwards.
        """
        exact: dict[int, ModelState] = {}
        for position in requested:
            if position == end:
                exact[position] = final.clone()
                continue
            boundary = start + ((position - start) // chunk_size) * chunk_size
            base = initial if boundary == start else snapped[boundary]
            if boundary == position:
                exact[position] = base.clone()
                continue
            segment = tokens[boundary - start : position - start]
            _, rolled = self.forward(segment, base)
            exact[position] = rolled
        return exact

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def decode_step(
        self, token: int, state: ModelState
    ) -> tuple[np.ndarray, ModelState]:
        """One decode step; returns [V] logits for the next token."""
        logits, new_state = self.forward(np.asarray([token]), state)
        return logits[0], new_state

    def generate(
        self,
        prompt_tokens: np.ndarray,
        n_tokens: int,
        state: ModelState | None = None,
    ) -> tuple[np.ndarray, ModelState]:
        """Greedy generation of ``n_tokens`` after prefilling the prompt."""
        if n_tokens <= 0:
            raise ValueError(f"n_tokens must be positive, got {n_tokens}")
        result = self.prefill(np.asarray(prompt_tokens), state)
        logits = result.logits[-1]
        current = result.state
        output = []
        for _ in range(n_tokens):
            token = greedy_token(logits)
            output.append(token)
            logits, current = self.decode_step(token, current)
        return np.asarray(output, dtype=np.int32), current
