"""An executable NumPy hybrid LLM.

This is a real (if small) model — embedding, Mamba-style selective-SSM
layers with causal-conv state, causal multi-head attention with KV cache,
SiLU MLPs, RMSNorm — built to validate the paper's correctness premise:
*prefix reusing is exact*.  It implements both prefill-time checkpointing
mechanisms from section 4.1 (chunked state passing and two-pass prefill)
so tests can assert that serving from a cached checkpoint reproduces the
no-cache forward pass to numerical precision.
"""

from repro.nn.attention import AttentionLayer
from repro.nn.functional import rmsnorm, silu, softmax, softplus
from repro.nn.hybrid import HybridModel, PrefillResult, layer_sequence
from repro.nn.mlp import MLPLayer
from repro.nn.sampling import greedy_token
from repro.nn.ssm import SSMLayer
from repro.nn.states import KVState, ModelState, RecurrentState

__all__ = [
    "softmax",
    "silu",
    "rmsnorm",
    "softplus",
    "AttentionLayer",
    "SSMLayer",
    "MLPLayer",
    "KVState",
    "RecurrentState",
    "ModelState",
    "HybridModel",
    "PrefillResult",
    "layer_sequence",
    "greedy_token",
]
