"""Stateless SiLU MLP block."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import silu


class MLPLayer:
    """Two-layer MLP with 4x expansion and SiLU, no state."""

    def __init__(self, d_model: int, rng: np.random.Generator) -> None:
        hidden = 4 * d_model
        self.w1 = rng.normal(0.0, 1.0 / np.sqrt(d_model), (d_model, hidden))
        self.w2 = rng.normal(0.0, 1.0 / np.sqrt(hidden), (hidden, d_model))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return silu(x @ self.w1) @ self.w2
