"""Numerically careful activation and normalization primitives."""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def softplus(x: np.ndarray) -> np.ndarray:
    """Stable softplus: ``log(1 + exp(x))`` without overflow."""
    return np.logaddexp(0.0, x)


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer norm over the last axis."""
    scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / scale * weight
