"""A Mamba-style selective SSM layer with causal-conv and recurrent state.

The layer follows the selective-state-space recipe: project to an expanded
inner dimension, apply a short causal depthwise convolution, derive
input-dependent (``selective``) parameters ``B``, ``C``, ``dt`` from the
conv output, and run the diagonal state recurrence

    ``h_t = exp(dt_t * A) * h_{t-1} + (dt_t * u_t) B_t``
    ``y_t = h_t C_t + D_skip * u_t``

gated by a SiLU branch.  The recurrence is strictly sequential and the
state is overwritten in place at every step — the property that makes
prefix rollback impossible and motivates the whole paper.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import silu, softplus
from repro.nn.states import RecurrentState


class SSMLayer:
    """Selective SSM block: in-proj, causal conv1d, scan, gate, out-proj."""

    def __init__(
        self,
        d_model: int,
        d_state: int,
        rng: np.random.Generator,
        *,
        expand: int = 2,
        d_conv: int = 4,
    ) -> None:
        if d_state <= 0:
            raise ValueError(f"d_state must be positive, got {d_state}")
        if d_conv < 2:
            raise ValueError(f"d_conv must be >= 2, got {d_conv}")
        self.d_model = d_model
        self.d_state = d_state
        self.d_inner = expand * d_model
        self.d_conv = d_conv
        scale = 1.0 / np.sqrt(d_model)
        inner_scale = 1.0 / np.sqrt(self.d_inner)
        self.w_in = rng.normal(0.0, scale, (d_model, 2 * self.d_inner))
        self.conv_w = rng.normal(0.0, 0.5, (d_conv, self.d_inner))
        self.conv_b = rng.normal(0.0, 0.02, (self.d_inner,))
        self.w_b = rng.normal(0.0, inner_scale, (self.d_inner, d_state))
        self.w_c = rng.normal(0.0, inner_scale, (self.d_inner, d_state))
        self.w_dt = rng.normal(0.0, inner_scale, (self.d_inner, self.d_inner))
        self.b_dt = rng.normal(-1.0, 0.2, (self.d_inner,))
        # A is negative-diagonal for stability: A = -exp(A_log).
        self.a_log = rng.normal(0.0, 0.5, (self.d_inner, self.d_state))
        self.d_skip = rng.normal(0.0, 0.5, (self.d_inner,))
        self.w_out = rng.normal(0.0, inner_scale, (self.d_inner, d_model))

    def init_state(self) -> RecurrentState:
        return RecurrentState.zeros(self.d_inner, self.d_state, self.d_conv)

    def forward(
        self, x: np.ndarray, state: RecurrentState
    ) -> tuple[np.ndarray, RecurrentState]:
        """Process ``x`` [T, D] from ``state``; returns output and new state.

        The input state is never mutated (cached payloads stay valid); the
        returned state reflects all T additional tokens.
        """
        n_new = x.shape[0]
        xz = x @ self.w_in
        x_in, z = xz[:, : self.d_inner], xz[:, self.d_inner :]

        # Causal depthwise conv over [conv window | new tokens].
        window = np.concatenate([state.conv, x_in], axis=0)
        u = np.full((n_new, self.d_inner), self.conv_b)
        for j in range(self.d_conv):
            u = u + window[j : j + n_new] * self.conv_w[j]
        u = silu(u)

        # Selective parameters from the conv output.
        b_sel = u @ self.w_b  # [T, N]
        c_sel = u @ self.w_c  # [T, N]
        dt = softplus(u @ self.w_dt + self.b_dt)  # [T, d_inner]

        a = -np.exp(self.a_log)  # [d_inner, N]
        h = state.ssm.copy()
        y = np.empty_like(u)
        for t in range(n_new):
            decay = np.exp(dt[t][:, None] * a)
            h = decay * h + (dt[t] * u[t])[:, None] * b_sel[t][None, :]
            y[t] = h @ c_sel[t] + self.d_skip * u[t]

        gated = y * silu(z)
        out = gated @ self.w_out
        new_state = RecurrentState(conv=window[n_new:].copy(), ssm=h)
        return out, new_state
