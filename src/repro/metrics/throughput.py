"""Throughput views over one simulation's request records."""

from __future__ import annotations

from repro.engine.results import EngineResult


def makespan_seconds(result: EngineResult) -> float:
    """Wall-clock span from first arrival to last prefill completion."""
    if not result.records:
        return 0.0
    start = min(r.arrival_time for r in result.records)
    end = max(r.service_start + r.prefill_seconds for r in result.records)
    return max(0.0, end - start)


def prefill_throughput_tokens_per_s(result: EngineResult) -> float:
    """Input tokens *processed* per second of makespan.

    Cache hits count: a token served from cache contributes to throughput
    precisely because its prefill was skipped — this is the tokens/s number
    the paper's section 2.2 says prefix caching raises.
    """
    span = makespan_seconds(result)
    if span == 0.0:
        return 0.0
    return sum(r.input_len for r in result.records) / span


def computed_prefill_throughput_tokens_per_s(result: EngineResult) -> float:
    """Input tokens actually *prefilled* (misses only) per second of makespan."""
    span = makespan_seconds(result)
    if span == 0.0:
        return 0.0
    return sum(r.input_len - r.hit_tokens for r in result.records) / span


def executor_utilization(result: EngineResult, n_executors: int = 1) -> float:
    """Fraction of executor-seconds spent prefilling over the makespan."""
    if n_executors < 1:
        raise ValueError(f"n_executors must be >= 1, got {n_executors}")
    span = makespan_seconds(result)
    if span == 0.0:
        return 0.0
    busy = sum(r.prefill_seconds for r in result.records)
    return min(1.0, busy / (span * n_executors))
