"""Result export: per-request CSV and aggregate JSON.

The paper's artifact writes one log file per dataset sweep and post-
processes it with plotting scripts; these helpers provide the equivalent
machine-readable surface for this reproduction's results.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path

from repro.engine.results import EngineResult

_CSV_FIELDS = (
    "session_id",
    "round_index",
    "arrival_time",
    "service_start",
    "prefill_seconds",
    "ttft",
    "input_len",
    "hit_tokens",
    "output_len",
    "reused_bytes",
    "flops_saved",
)


def records_to_csv(result: EngineResult, path: str | Path) -> None:
    """Write one CSV row per served request."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for record in result.records:
            row = asdict(record)
            writer.writerow({key: row[key] for key in _CSV_FIELDS})


def records_from_csv(path: str | Path) -> list[dict]:
    """Read rows written by :func:`records_to_csv` with numeric types restored."""
    path = Path(path)
    out: list[dict] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            parsed = dict(row)
            for key in ("session_id", "round_index", "input_len", "hit_tokens",
                        "output_len", "reused_bytes"):
                parsed[key] = int(row[key])
            for key in ("arrival_time", "service_start", "prefill_seconds",
                        "ttft", "flops_saved"):
                parsed[key] = float(row[key])
            out.append(parsed)
    return out


def summary_dict(result: EngineResult) -> dict:
    """Aggregate view of one run (policy, hit rate, TTFT percentiles)."""
    from repro.metrics.throughput import (
        makespan_seconds,
        prefill_throughput_tokens_per_s,
    )

    summary: dict = {
        "policy": result.policy,
        "n_requests": result.n_requests,
        "token_hit_rate": result.token_hit_rate,
        "total_flops_saved": result.total_flops_saved,
        "makespan_seconds": makespan_seconds(result),
        "prefill_throughput_tokens_per_s": prefill_throughput_tokens_per_s(result),
        "cache_stats": result.cache_stats,
    }
    if result.records:
        summary["ttft_p5"] = result.ttft_percentile(5)
        summary["ttft_p50"] = result.ttft_percentile(50)
        summary["ttft_p95"] = result.ttft_percentile(95)
    return summary


def _write_json(payload: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def summary_to_json(result: EngineResult, path: str | Path) -> None:
    """Write :func:`summary_dict` as pretty-printed JSON."""
    _write_json(summary_dict(result), path)


def summary_from_json(path: str | Path) -> dict:
    """Load a summary written by :func:`summary_to_json` (or its cluster
    counterpart :func:`cluster_summary_to_json`)."""
    return json.loads(Path(path).read_text())


def cluster_summary_dict(result) -> dict:
    """Aggregate view of one cluster run (duck-typed on
    :meth:`repro.cluster.simulator.ClusterResult.to_dict`): cluster-wide
    hit rate and TTFT percentiles, per-replica summaries, steering and
    directory telemetry, and the scenario schedule — so cluster runs land
    in the same reporting pipeline as single-engine runs."""
    return result.to_dict()


def cluster_summary_to_json(result, path: str | Path) -> None:
    """Write :func:`cluster_summary_dict` as pretty-printed JSON."""
    _write_json(cluster_summary_dict(result), path)


#: Steering decision counters promoted into :func:`steering_split_summary`
#: (absent counters export as 0 so downstream tooling sees a stable shape).
_SPLIT_COUNTERS = (
    "transfers_planned",
    "transfers_split",
    "transfers_completed",
    "transfers_dropped",
    "chose_recompute",
    "chose_load",
    "chose_split",
    "splits_overlapped",
    "splits_hidden",
    "splits_ignored",
)


def steering_split_summary(result) -> dict:
    """Compact split-point steering view of one cluster run.

    Duck-typed on :class:`~repro.cluster.simulator.ClusterResult`:
    promotes the compute/load/split decision counters, the overlap
    savings, and the transfer-link ledger into one flat dict — the shape
    the steering benchmarks embed in ``BENCH_steering.json``.
    """
    steering = result.steering
    out: dict = {key: 0 for key in _SPLIT_COUNTERS}
    if steering is None:
        out["overlap_seconds_saved"] = 0.0
        out["link_wait_seconds"] = 0.0
        out["total_transfer_bytes"] = 0
        return out
    for key in _SPLIT_COUNTERS:
        out[key] = steering.counters.get(key, 0)
    out["overlap_seconds_saved"] = steering.overlap_seconds_saved
    out["link_wait_seconds"] = steering.link_wait_seconds
    out["total_transfer_bytes"] = steering.total_transfer_bytes
    return out


#: Scalar staleness fields promoted into :func:`directory_staleness_summary`
#: (the sharded backend's aggregate counters; absent keys are skipped, so
#: the synchronous oracle's snapshot passes through its own counters).
_STALENESS_SCALARS = (
    "backend",
    "n_shards",
    "live_shards",
    "propagation_delay",
    "gossip_budget",
    "events",
    "lookups",
    "updates_applied",
    "updates_pending",
    "updates_dropped",
    "invalidations",
    "shard_losses",
    "lookup_age_p50",
    "lookup_age_p95",
    "lookup_age_max",
)


def directory_staleness_summary(result) -> dict:
    """Compact staleness view of one cluster run (duck-typed on
    :attr:`repro.cluster.simulator.ClusterResult.directory_staleness`):
    the scalar aggregate counters plus per-shard ``(applied, pending)``
    update counts, without the full per-shard maintenance breakdown —
    the block reports and sweep tables want one row per run."""
    staleness = getattr(result, "directory_staleness", None)
    if staleness is None:
        staleness = result if isinstance(result, dict) else {}
    summary = {
        key: staleness[key] for key in _STALENESS_SCALARS if key in staleness
    }
    per_shard = staleness.get("per_shard")
    if per_shard:
        summary["shard_applied_updates"] = [s["applied_updates"] for s in per_shard]
        summary["shard_pending_updates"] = [s["pending_updates"] for s in per_shard]
    return summary


cluster_summary_from_json = summary_from_json


def gateway_summary_dict(gateway) -> dict:
    """Aggregate view of one live gateway (duck-typed on
    :class:`repro.serving.gateway.Gateway`): the admission counters
    (admitted/shed/aborted, response-cache hits), per-tier queue depths,
    response-cache hit/byte stats, and the underlying prefix cache's
    counters — so live runs land in the same reporting pipeline as
    simulated ones."""
    summary: dict = {
        "gateway": gateway.stats.snapshot(),
        "tiers": gateway.tier_depths(),
    }
    if gateway.response_cache is not None:
        summary["response_cache"] = gateway.response_cache.stats.snapshot()
    cache = getattr(gateway.server, "cache", None)
    if cache is not None:
        summary["prefix_cache"] = cache.stats.snapshot()
        summary["open_sessions"] = cache.open_sessions
    return summary


def gateway_summary_to_json(gateway, path: str | Path) -> None:
    """Write :func:`gateway_summary_dict` as pretty-printed JSON."""
    _write_json(gateway_summary_dict(gateway), path)


gateway_summary_from_json = summary_from_json
