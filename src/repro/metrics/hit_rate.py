"""Token hit rate aggregation and comparisons."""

from __future__ import annotations

import numpy as np

from repro.engine.results import EngineResult, RequestRecord


def token_hit_rate(records: list[RequestRecord]) -> float:
    """Tokens that skipped prefill over total input tokens."""
    total = sum(r.input_len for r in records)
    if total == 0:
        return 0.0
    return sum(r.hit_tokens for r in records) / total


def improvement_ratio(candidate: float, baseline: float, floor: float = 1e-4) -> float:
    """``candidate / baseline`` with a floor on the baseline.

    The paper reports hit-rate wins as ratios (e.g. "34.4x higher"); the
    floor keeps near-zero baselines (vLLM+ under SWEBench-style thrash)
    from producing infinities while preserving the "orders of magnitude"
    reading.
    """
    return candidate / max(baseline, floor)


def mean_hit_rate_by_length_bin(
    records: list[RequestRecord], bin_edges: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Average per-request hit rate binned by input length (Fig. 10a).

    Returns ``(mean_hit_rate_per_bin, counts_per_bin)``; empty bins get NaN.
    """
    edges = np.asarray(bin_edges, dtype=np.float64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("bin_edges must be a 1-D array of at least two edges")
    lengths = np.asarray([r.input_len for r in records], dtype=np.float64)
    rates = np.asarray([r.hit_rate for r in records], dtype=np.float64)
    indices = np.digitize(lengths, edges) - 1
    n_bins = len(edges) - 1
    means = np.full(n_bins, np.nan)
    counts = np.zeros(n_bins, dtype=np.int64)
    for b in range(n_bins):
        mask = indices == b
        counts[b] = int(mask.sum())
        if counts[b]:
            means[b] = float(rates[mask].mean())
    return means, counts


def hit_rate_win(result: EngineResult, baseline: EngineResult) -> float:
    """Relative token-hit-rate win of ``result`` over ``baseline`` (Fig. 8).

    Expressed as a fraction: 0.5 means "+50% hit rate".
    """
    base = baseline.token_hit_rate
    if base <= 0:
        raise ValueError("baseline has zero hit rate; use improvement_ratio instead")
    return result.token_hit_rate / base - 1.0
