"""Percentile, box-summary, and CDF helpers (pure NumPy wrappers)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def percentile(values, p: float) -> float:
    """Linear-interpolated percentile; validates input non-emptiness."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    return float(np.percentile(arr, p))


@dataclass(frozen=True)
class BoxSummary:
    """The five numbers behind the paper's box plots (whiskers at P5/P95)."""

    p5: float
    q1: float
    median: float
    q3: float
    p95: float

    @classmethod
    def from_values(cls, values) -> "BoxSummary":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot summarize no values")
        p5, q1, med, q3, p95 = np.percentile(arr, [5, 25, 50, 75, 95])
        return cls(float(p5), float(q1), float(med), float(q3), float(p95))

    def as_dict(self) -> dict[str, float]:
        return {
            "p5": self.p5,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "p95": self.p95,
        }


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities in (0, 1]."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("cannot build a CDF of no values")
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs
