"""Load-balance metrics for multi-replica serving."""

from __future__ import annotations

import numpy as np


def jain_fairness(values: np.ndarray | list[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even load; ``1/n`` means one replica carries
    everything.  All-zero loads are defined as perfectly fair.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    total_sq = float(np.sum(arr) ** 2)
    denom = float(arr.size * np.sum(arr**2))
    if denom == 0.0:
        return 1.0
    return total_sq / denom


def coefficient_of_variation(values: np.ndarray | list[float]) -> float:
    """Std/mean of per-replica loads (0 = perfectly balanced)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float(arr.std() / mean)
