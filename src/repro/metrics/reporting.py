"""Plain-text rendering for experiment outputs (tables and units)."""

from __future__ import annotations

from typing import Sequence


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table (used by every figure harness)."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )

    def fmt(row: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [fmt(cells[0]), separator] + [fmt(row) for row in cells[1:]]
    return "\n".join(lines)


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary-free, paper uses GB = 1e9)."""
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


def format_ratio(value: float) -> str:
    """Render an improvement ratio the way the paper does ("34.4x")."""
    return f"{value:.1f}x"


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
