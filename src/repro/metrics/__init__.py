"""Metrics: token hit rate, TTFT percentiles, FLOP savings, and summaries."""

from repro.metrics.export import (
    cluster_summary_dict,
    cluster_summary_from_json,
    cluster_summary_to_json,
    gateway_summary_dict,
    gateway_summary_from_json,
    gateway_summary_to_json,
    records_from_csv,
    records_to_csv,
    steering_split_summary,
    summary_dict,
    summary_from_json,
    summary_to_json,
)
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.metrics.hit_rate import (
    hit_rate_win,
    improvement_ratio,
    mean_hit_rate_by_length_bin,
    token_hit_rate,
)
from repro.metrics.percentiles import BoxSummary, cdf, percentile
from repro.metrics.reporting import ascii_table, format_bytes, format_ratio
from repro.metrics.throughput import (
    computed_prefill_throughput_tokens_per_s,
    executor_utilization,
    makespan_seconds,
    prefill_throughput_tokens_per_s,
)
from repro.metrics.ttft import relative_ttft_percentile, ttft_cdf

__all__ = [
    "token_hit_rate",
    "hit_rate_win",
    "improvement_ratio",
    "mean_hit_rate_by_length_bin",
    "BoxSummary",
    "percentile",
    "cdf",
    "relative_ttft_percentile",
    "ttft_cdf",
    "ascii_table",
    "format_bytes",
    "format_ratio",
    "jain_fairness",
    "coefficient_of_variation",
    "makespan_seconds",
    "prefill_throughput_tokens_per_s",
    "computed_prefill_throughput_tokens_per_s",
    "executor_utilization",
    "records_to_csv",
    "records_from_csv",
    "summary_dict",
    "summary_to_json",
    "summary_from_json",
    "cluster_summary_dict",
    "cluster_summary_to_json",
    "cluster_summary_from_json",
    "steering_split_summary",
    "gateway_summary_dict",
    "gateway_summary_to_json",
    "gateway_summary_from_json",
]
