"""TTFT comparisons against the vanilla (no-cache) run."""

from __future__ import annotations

import numpy as np

from repro.engine.results import EngineResult
from repro.metrics.percentiles import cdf, percentile


def relative_ttft_percentile(
    result: EngineResult, vanilla: EngineResult, p: float = 95
) -> float:
    """P-th percentile TTFT of ``result`` relative to ``vanilla`` (Fig. 9).

    Values below 1.0 mean the cache reduced tail TTFT.
    """
    base = percentile(vanilla.ttfts(), p)
    if base <= 0:
        raise ValueError("vanilla TTFT percentile is non-positive")
    return percentile(result.ttfts(), p) / base


def ttft_cdf(result: EngineResult) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of per-request TTFT in seconds (Fig. 10b)."""
    return cdf(result.ttfts())
