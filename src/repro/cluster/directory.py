"""Router-side global prefix directory over a cluster's replica caches.

The legacy prefix-affinity router deep-probes every replica's full radix
tree on every arrival — an O(replicas x tree-depth) walk per request that
also couples the router to each cache's internals.  The directory replaces
those probes with one shared radix index over the *union* of all replicas'
cached content, answering "who holds the deepest usable prefix of this
query?" in a single O(query-depth) walk.

It is maintained incrementally, never rescanned per request:

* each tracked replica cache exports its tree mutations through the
  :class:`~repro.core.radix_tree.TreeObserver` surface (the same contract
  that powers the eviction index), so admissions, speculative inserts,
  evictions, truncations, and abort rollbacks all update the directory as
  they happen — including those driven by request-session commits;
* a cache that replaces its tree wholesale (``reset()``, persistence
  reload, failover wipe) re-attaches its registered observers through
  :meth:`repro.core.interfaces.PrefixCache.add_tree_observer`'s contract,
  and the directory answers with one full resync of that replica.

Per directory node the index stores, per replica: how many tokens of the
node's edge the replica holds KVs for (coverage is always a prefix of the
edge, because a replica's own tree is prefix-closed along any root path)
and whether the replica checkpoints a recurrent state exactly at the
node's end.  Those two annotations reproduce both hit rules the deep
probe implements: the hybrid all-or-nothing rule (deepest checkpointed
node on the fully-matched path) and the pure-Transformer rule (raw
common-prefix length, mid-edge allowed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from repro.core.radix_tree import TreeObserver, common_prefix_length
from repro.core.node import RadixNode


class _DirNode:
    """One edge of the union index plus its per-replica annotations.

    ``cover[r]`` is how many leading tokens of ``edge`` replica ``r``
    holds (present only when > 0; implies ``r`` fully covers the parent's
    edge).  ``ckpt`` is the set of replicas checkpointing exactly at this
    node's end depth — checkpoint marks force an edge split, so a
    checkpoint depth always lands on a node boundary.
    """

    __slots__ = ("edge", "parent", "children", "end", "cover", "ckpt")

    def __init__(self, edge: np.ndarray, parent: Optional["_DirNode"]) -> None:
        self.edge = edge
        self.parent = parent
        self.children: dict[int, _DirNode] = {}
        self.end: int = (parent.end if parent is not None else 0) + len(edge)
        self.cover: dict[int, int] = {}
        self.ckpt: set[int] = set()

    @property
    def start(self) -> int:
        return self.end - len(self.edge)

    @property
    def is_empty(self) -> bool:
        return not self.children and not self.cover and not self.ckpt


@dataclass
class DirectoryStats:
    """Maintenance and staleness counters of one directory instance.

    The update-propagation fields (``applied_updates``, ``pending_updates``,
    ``dropped_updates``) stay zero for the synchronous oracle — every event
    applies inline — and are populated per shard by
    :class:`~repro.cluster.sharded_directory.ShardedPrefixDirectory`.
    """

    events: int = 0
    marks: int = 0
    clears: int = 0
    splits: int = 0
    pruned_nodes: int = 0
    resyncs: int = 0
    lookups: int = 0
    n_nodes: int = 0
    untracked_replicas: int = 0
    invalidations: int = 0
    applied_updates: int = 0
    pending_updates: int = 0
    dropped_updates: int = 0

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "marks": self.marks,
            "clears": self.clears,
            "splits": self.splits,
            "pruned_nodes": self.pruned_nodes,
            "resyncs": self.resyncs,
            "lookups": self.lookups,
            "n_nodes": self.n_nodes,
            "untracked_replicas": self.untracked_replicas,
            "invalidations": self.invalidations,
            "applied_updates": self.applied_updates,
            "pending_updates": self.pending_updates,
            "dropped_updates": self.dropped_updates,
        }


@dataclass
class DirectoryLookup:
    """Per-replica answer of one directory walk.

    ``kv_matched[r]`` is the raw common-prefix length between the query
    and replica ``r``'s cached content (the Transformer reuse length);
    ``ckpt_depth[r]`` is the deepest checkpointed prefix of the query that
    ``r`` holds with depth <= the walk's ``limit`` (the hybrid hit).
    Replicas with no match are absent.
    """

    kv_matched: dict[int, int] = field(default_factory=dict)
    ckpt_depth: dict[int, int] = field(default_factory=dict)
    #: Every checkpointed prefix depth of the query each replica holds
    #: (ascending, capped by the walk's ``limit``); ``ckpt_depth[r]`` is
    #: always ``ckpt_depths[r][-1]``.  Split-point steering picks its
    #: candidate split depths from this list.
    ckpt_depths: dict[int, list[int]] = field(default_factory=dict)


class _ReplicaView(TreeObserver):
    """The directory's per-replica observer bridge."""

    def __init__(self, directory: "PrefixDirectory", replica: int) -> None:
        self.directory = directory
        self.replica = replica

    # -- structure events ------------------------------------------------
    def on_node_added(self, node: RadixNode) -> None:
        tokens = node.path_tokens()
        self.directory._note_event()
        self.directory._mark(self.replica, tokens, len(tokens))

    def on_leaf_removed(self, node: RadixNode, parent: RadixNode) -> None:
        # The detached node keeps its edge tokens, so the full removed
        # path is still reconstructible.
        tokens = np.concatenate([parent.path_tokens(), node.edge_tokens])
        self.directory._note_event()
        self.directory._clear_beyond(self.replica, tokens, parent.seq_len)

    def on_leaf_truncated(self, node: RadixNode) -> None:
        # The dropped tail tokens are gone from the replica tree, but the
        # directory still holds them: clear-descend below the new end.
        self.directory._note_event()
        self.directory._truncate(self.replica, node.path_tokens())

    def on_checkpoint_changed(self, node: RadixNode) -> None:
        tokens = node.path_tokens()
        self.directory._note_event()
        if node.has_ssm_state:
            self.directory._set_ckpt(self.replica, tokens, node.seq_len)
        else:
            self.directory._clear_ckpt(self.replica, tokens, node.seq_len)

    # Splits and merges redistribute tokens between replica-tree nodes
    # without changing the replica's cached token set or checkpoint
    # depths (merges always clear the checkpoint first), so the
    # directory's content view is unaffected.
    def on_edge_split(self, middle: RadixNode, child: RadixNode) -> None: ...

    def on_merged(self, node: RadixNode, child: RadixNode) -> None: ...

    def on_pin_changed(self, node: RadixNode) -> None: ...

    def on_touched(self, node: RadixNode) -> None: ...

    # -- tree replacement (reset / reload / failover) --------------------
    def on_tree_attached(self, tree: Any) -> None:
        self.directory._resync(self.replica, tree)


class PrefixDirectory:
    """Incrementally maintained prefix -> replica-set index for routing."""

    def __init__(self) -> None:
        self.root = _DirNode(np.empty(0, dtype=np.int32), parent=None)
        self.stats = DirectoryStats()
        self._views: dict[int, _ReplicaView] = {}
        self._caches: dict[int, Any] = {}
        self._tracked: set[int] = set()

    # ------------------------------------------------------------------
    # Replica lifecycle
    # ------------------------------------------------------------------
    def attach(self, replica: int, cache: Any) -> bool:
        """Start tracking ``replica``'s cache; returns False when the
        cache has no observable tree (deep-probe fallback applies).

        Caches exposing their own ``probe`` method (block stores) are
        left untracked on purpose: the deep probe prefers that method,
        so the directory must too for decision compatibility.
        """
        if replica in self._views:
            if self._caches.get(replica) is cache:
                return replica in self._tracked
            # Same slot, different cache (a shared directory re-bound to a
            # rebuilt fleet): drop the stale observer before re-attaching.
            self.detach(replica)
        view = _ReplicaView(self, replica)
        self._views[replica] = view
        self._caches[replica] = cache
        attach = getattr(cache, "add_tree_observer", None)
        if (
            callable(getattr(cache, "probe", None))
            or attach is None
            or not attach(view)
        ):
            self.stats.untracked_replicas += 1
            return False
        self._tracked.add(replica)
        tree = getattr(cache, "tree", None)
        if tree is not None:
            self._resync(replica, tree)
        return True

    def tracked(self, replica: int) -> bool:
        return replica in self._tracked

    @property
    def replicas(self) -> tuple[int, ...]:
        return tuple(sorted(self._tracked))

    def invalidate(self, replica: int) -> None:
        """Drop every directory entry of ``replica`` (failure/removal)."""
        self._clear_replica(replica)
        self.stats.invalidations += 1

    def detach(self, replica: int) -> None:
        """Stop observing ``replica`` and drop its entries."""
        view = self._views.pop(replica, None)
        cache = self._caches.pop(replica, None)
        if view is not None and cache is not None:
            remove = getattr(cache, "remove_tree_observer", None)
            if callable(remove):
                remove(view)
        if replica in self._tracked:
            self._tracked.discard(replica)
            self.invalidate(replica)

    def close(self) -> None:
        """Detach from every cache (directory becomes inert)."""
        for replica in list(self._views):
            self.detach(replica)

    # ------------------------------------------------------------------
    # Lookup (the per-request O(query depth) walk)
    # ------------------------------------------------------------------
    def lookup(self, tokens: np.ndarray, limit: Optional[int] = None) -> DirectoryLookup:
        """Per-replica deepest reuse for ``tokens``.

        ``limit`` caps the checkpoint depths considered (the hybrid rule
        requires the final input token to be prefilled, so routers pass
        ``len(tokens) - 1``); KV matched lengths are reported raw.
        """
        self.stats.lookups += 1
        out = DirectoryLookup()
        if limit is None:
            limit = len(tokens)
        kv_matched = out.kv_matched
        node = self.root
        pos = 0
        n = len(tokens)
        # Coverage is prefix-closed (cover on a node implies full cover of
        # every ancestor — see check_integrity), so a single downward pass
        # suffices: deeper cover entries simply overwrite shallower ones.
        while pos < n:
            child = node.children.get(int(tokens[pos]))
            if child is None:
                break
            shared = common_prefix_length(child.edge, tokens[pos:])
            for r, c in child.cover.items():
                kv_matched[r] = pos + (c if c < shared else shared)
            if shared < len(child.edge):
                break
            pos += shared
            if child.ckpt and pos <= limit:
                for r in child.ckpt:
                    out.ckpt_depth[r] = pos
                    depths = out.ckpt_depths.get(r)
                    if depths is None:
                        out.ckpt_depths[r] = [pos]
                    else:
                        depths.append(pos)
            node = child
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[_DirNode]:
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def staleness(self) -> dict:
        """Maintenance/staleness snapshot (exported with cluster results)."""
        return self.stats.to_dict()

    def check_integrity(self) -> None:
        """Raise ``AssertionError`` on any structural inconsistency (tests)."""
        for node in self.iter_nodes():
            assert len(node.edge) > 0, "non-root directory node with empty edge"
            assert node.parent is not None
            assert node.end == node.parent.end + len(node.edge)
            assert node.parent.children.get(int(node.edge[0])) is node
            assert not node.is_empty, "unpruned empty directory node"
            for r, c in node.cover.items():
                assert 0 < c <= len(node.edge)
                parent = node.parent
                if parent is not self.root:
                    assert parent.cover.get(r) == len(parent.edge), (
                        "coverage must be prefix-closed"
                    )
            for r in node.ckpt:
                assert node.cover.get(r) == len(node.edge), (
                    "checkpoint without full coverage"
                )

    # ------------------------------------------------------------------
    # Maintenance primitives
    # ------------------------------------------------------------------
    def _note_event(self) -> None:
        self.stats.events += 1

    def _split(self, child: _DirNode, at: int) -> _DirNode:
        """Split ``child``'s edge after ``at`` tokens, redistributing
        per-replica coverage; checkpoints stay with ``child`` (its end
        depth is unchanged)."""
        parent = child.parent
        assert parent is not None and 0 < at < len(child.edge)
        middle = _DirNode(child.edge[:at].copy(), parent)
        parent.children[int(middle.edge[0])] = middle
        child.edge = child.edge[at:].copy()
        child.parent = middle
        middle.children[int(child.edge[0])] = child
        new_cover: dict[int, int] = {}
        for r, c in child.cover.items():
            middle.cover[r] = min(c, at)
            if c > at:
                new_cover[r] = c - at
        child.cover = new_cover
        self.stats.splits += 1
        self.stats.n_nodes += 1
        if child.is_empty:
            # Every cover entry ended at or before the split point, and the
            # child carries no checkpoint (checkpoints imply full coverage)
            # and no children: the deep half is dead weight.  Drop it here —
            # no caller revisits it, so it would otherwise leak as an
            # unpruned empty node.  ``middle`` inherited at least one cover
            # entry in this case (the child's cover was non-empty pre-split),
            # so it never needs the ancestor-walking prune.
            del middle.children[int(child.edge[0])]
            child.parent = None
            self.stats.pruned_nodes += 1
            self.stats.n_nodes -= 1
        return middle

    def _prune(self, node: Optional[_DirNode]) -> None:
        """Remove ``node`` and its ancestors while they carry nothing."""
        while node is not None and node.parent is not None and node.is_empty:
            parent = node.parent
            del parent.children[int(node.edge[0])]
            node.parent = None
            self.stats.pruned_nodes += 1
            self.stats.n_nodes -= 1
            node = parent

    def _mark(self, replica: int, tokens: np.ndarray, upto: int) -> None:
        """Record that ``replica`` holds KVs for ``tokens[:upto]``."""
        self.stats.marks += 1
        node = self.root
        pos = 0
        while pos < upto:
            rem = tokens[pos:upto]
            child = node.children.get(int(rem[0]))
            if child is None:
                leaf = _DirNode(np.asarray(rem, dtype=np.int32).copy(), node)
                node.children[int(leaf.edge[0])] = leaf
                leaf.cover[replica] = len(leaf.edge)
                self.stats.n_nodes += 1
                return
            shared = common_prefix_length(child.edge, rem)
            if shared < len(child.edge):
                if shared < len(rem):
                    # Divergence mid-edge: split, then hang the new tail.
                    middle = self._split(child, shared)
                    middle.cover[replica] = len(middle.edge)
                    leaf = _DirNode(np.asarray(rem[shared:], dtype=np.int32).copy(), middle)
                    middle.children[int(leaf.edge[0])] = leaf
                    leaf.cover[replica] = len(leaf.edge)
                    self.stats.n_nodes += 1
                else:
                    # Marked range ends mid-edge: partial coverage, no split.
                    child.cover[replica] = max(child.cover.get(replica, 0), shared)
                return
            child.cover[replica] = len(child.edge)
            node = child
            pos += shared

    def _walk(self, tokens: np.ndarray) -> list[tuple[_DirNode, int, int]]:
        """Directory path along ``tokens``: ``(node, start_pos, shared)``."""
        path: list[tuple[_DirNode, int, int]] = []
        node = self.root
        pos = 0
        n = len(tokens)
        while pos < n:
            child = node.children.get(int(tokens[pos]))
            if child is None:
                break
            shared = common_prefix_length(child.edge, tokens[pos:])
            path.append((child, pos, shared))
            if shared < len(child.edge):
                break
            node = child
            pos += shared
        return path

    def _clear_beyond(self, replica: int, tokens: np.ndarray, keep: int) -> None:
        """Clear ``replica``'s coverage and checkpoints past depth ``keep``
        along the known token path."""
        self.stats.clears += 1
        deepest: Optional[_DirNode] = None
        for node, start, shared in self._walk(tokens):
            end_here = start + shared
            if end_here <= keep:
                continue
            c = node.cover.get(replica, 0)
            if c > 0:
                new = max(0, keep - start)
                if c > new:
                    if new > 0:
                        node.cover[replica] = new
                    else:
                        del node.cover[replica]
            if node.end > keep:
                node.ckpt.discard(replica)
            deepest = node
        self._prune(deepest)

    def _truncate(self, replica: int, tokens: np.ndarray) -> None:
        """Clear ``replica`` below depth ``len(tokens)`` when the dropped
        tail tokens are no longer known (leaf truncation): the directory
        still holds them, and the replica's chain below the cut is unique
        (a truncation always lands strictly inside one former edge)."""
        self.stats.clears += 1
        keep = len(tokens)
        path = self._walk(tokens)
        if not path:
            return
        node, start, shared = path[-1]
        c = node.cover.get(replica, 0)
        covered_to = start + c
        anchor = node
        if covered_to > keep:
            new = keep - start
            if new > 0:
                node.cover[replica] = new
            else:
                del node.cover[replica]
        # Coverage ran through this whole edge (the directory may be more
        # split than the replica's leaf was, so the cut point can land
        # mid-edge *or* on a boundary): deeper nodes can carry the
        # replica's chain and must be cleared either way.
        if c == len(node.edge):
            stack = [
                child
                for child in node.children.values()
                if replica in child.cover
            ]
            while stack:
                child = stack.pop()
                del child.cover[replica]
                child.ckpt.discard(replica)
                stack.extend(
                    grand
                    for grand in child.children.values()
                    if replica in grand.cover
                )
                if child.is_empty:
                    self._prune(child)
        self._prune(anchor)

    def _set_ckpt(self, replica: int, tokens: np.ndarray, depth: int) -> None:
        """Mark a recurrent checkpoint of ``replica`` at exactly ``depth``."""
        self._mark(replica, tokens, depth)
        node = self.root
        pos = 0
        while pos < depth:
            child = node.children.get(int(tokens[pos]))
            assert child is not None, "checkpoint path must exist after marking"
            shared = common_prefix_length(child.edge, tokens[pos:depth])
            if shared < len(child.edge):
                child = self._split(child, shared)
            node = child
            pos += shared
        if node is not self.root:
            node.ckpt.add(replica)

    def _clear_ckpt(self, replica: int, tokens: np.ndarray, depth: int) -> None:
        """Drop ``replica``'s checkpoint mark at exactly ``depth``."""
        target: Optional[_DirNode] = None
        for node, start, shared in self._walk(tokens[:depth]):
            if start + shared == depth and shared == len(node.edge):
                target = node
        if target is not None:
            target.ckpt.discard(replica)
            self._prune(target)

    def _clear_replica(self, replica: int) -> None:
        """Remove every annotation of ``replica`` from the whole index."""
        doomed: list[_DirNode] = []
        for node in self.iter_nodes():
            node.cover.pop(replica, None)
            node.ckpt.discard(replica)
            if node.is_empty:
                doomed.append(node)
        for node in doomed:
            self._prune(node)

    def _resync(self, replica: int, tree: Any) -> None:
        """Rebuild ``replica``'s annotations from a full tree scan (used at
        attach time and whenever the cache swaps in a new tree)."""
        self._clear_replica(replica)
        self.stats.resyncs += 1
        root = getattr(tree, "root", None)
        if root is None:
            return
        stack: list[tuple[RadixNode, np.ndarray]] = [
            (child, child.edge_tokens) for child in root.children.values()
        ]
        while stack:
            node, path = stack.pop()
            self._mark(replica, path, len(path))
            if node.has_ssm_state:
                self._set_ckpt(replica, path, node.seq_len)
            stack.extend(
                (child, np.concatenate([path, child.edge_tokens]))
                for child in node.children.values()
            )
