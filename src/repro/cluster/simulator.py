"""Discrete-event simulator for a cluster of cache-owning replicas.

Each replica is one prefill executor with its own prefix cache (the Preble
deployment model).  The router assigns requests at *arrival*; from there a
request lives entirely on its replica: FCFS queueing, cache lookup at
service start, background decode, admission at decode end, and closed-loop
scheduling of the session's next round (which is routed afresh — a session
can migrate if the router decides so).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import CacheProtocol, RequestSession
from repro.engine.events import EventKind, EventQueue
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.cluster.router import Router
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops
from repro.workloads.trace import Trace, TraceSession


@dataclass
class _InFlight:
    request: EngineRequest
    replica: int
    session: RequestSession  # lookup outcome (hit/reused bytes) lives here
    service_start: float
    prefill_seconds: float


@dataclass
class ClusterResult:
    """Everything measured about one (trace, router, caches) cluster run."""

    router: str
    replica_results: list[EngineResult]
    routed_counts: list[int]
    busy_seconds: list[float]

    @property
    def n_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def n_requests(self) -> int:
        return sum(r.n_requests for r in self.replica_results)

    @property
    def token_hit_rate(self) -> float:
        """Cluster-wide tokens served from cache over total input tokens."""
        total_input = sum(
            rec.input_len for result in self.replica_results for rec in result.records
        )
        if total_input == 0:
            return 0.0
        total_hit = sum(
            rec.hit_tokens for result in self.replica_results for rec in result.records
        )
        return total_hit / total_input

    def ttfts(self) -> np.ndarray:
        """All replicas' per-request TTFTs (seconds), unordered."""
        values = [
            rec.ttft for result in self.replica_results for rec in result.records
        ]
        return np.asarray(values, dtype=np.float64)

    def ttft_percentile(self, percentile: float) -> float:
        """Cluster-wide TTFT percentile in seconds."""
        values = self.ttfts()
        if len(values) == 0:
            raise ValueError("no records to take a percentile of")
        return float(np.percentile(values, percentile))

    @property
    def load_fairness(self) -> float:
        """Jain's index over per-replica busy time (1.0 = perfectly even)."""
        return jain_fairness(self.busy_seconds)

    @property
    def load_imbalance(self) -> float:
        """Coefficient of variation of per-replica busy time."""
        return coefficient_of_variation(self.busy_seconds)


class ClusterSimulator:
    """Replays one trace through R replicas under one routing policy."""

    def __init__(
        self,
        model: ModelConfig,
        caches: Sequence[CacheProtocol],
        router: Router,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if not caches:
            raise ValueError("need at least one replica cache")
        self.model = model
        self.caches = list(caches)
        self.router = router
        self.latency = latency or LatencyModel()
        self._seq = itertools.count()

    def run(self, trace: Trace) -> ClusterResult:
        """Simulate the full trace across all replicas under the router."""
        n = len(self.caches)
        events = EventQueue(self._seq)
        push = events.push
        queues: list[list[EngineRequest]] = [[] for _ in range(n)]
        busy = [False] * n
        busy_seconds = [0.0] * n
        routed_counts = [0] * n
        results = [
            EngineResult(policy=f"{self.router.name}/replica{i}") for i in range(n)
        ]

        def loads() -> list[int]:
            return [len(queues[i]) + (1 if busy[i] else 0) for i in range(n)]

        def start_next(replica: int, now: float) -> None:
            if busy[replica] or not queues[replica]:
                return
            request = queues[replica].pop(0)
            session = self.caches[replica].begin(request.input_tokens, now)
            prefill_seconds = self.latency.prefill_seconds(
                self.model,
                seq_len=request.input_len,
                reused_len=session.hit_tokens,
                reused_bytes=session.reused_bytes,
                secondary_bytes=session.reused_secondary_bytes,
            )
            busy[replica] = True
            push(
                now + prefill_seconds,
                EventKind.PREFILL_DONE,
                _InFlight(
                    request=request,
                    replica=replica,
                    session=session,
                    service_start=now,
                    prefill_seconds=prefill_seconds,
                ),
            )

        def admit_arrival(request: EngineRequest, now: float) -> None:
            replica = self.router.route(
                request.input_tokens, request.session_id, self.caches, loads(), now
            )
            if not 0 <= replica < n:
                raise ValueError(
                    f"router {self.router.name!r} returned invalid replica {replica}"
                )
            routed_counts[replica] += 1
            queues[replica].append(request)
            start_next(replica, now)

        for session in trace.sessions:
            push(
                session.arrival_time,
                EventKind.REQUEST_ARRIVAL,
                self._make_request(session, 0, session.arrival_time),
            )

        sessions_by_id = {s.session_id: s for s in trace.sessions}
        while events:
            event = events.pop()
            now = event.time
            if event.kind == EventKind.REQUEST_ARRIVAL:
                admit_arrival(event.payload, now)
            elif event.kind == EventKind.PREFILL_DONE:
                flight: _InFlight = event.payload
                request = flight.request
                results[flight.replica].records.append(
                    RequestRecord(
                        session_id=request.session_id,
                        round_index=request.round_index,
                        arrival_time=request.arrival_time,
                        service_start=flight.service_start,
                        prefill_seconds=flight.prefill_seconds,
                        ttft=now - request.arrival_time,
                        input_len=request.input_len,
                        hit_tokens=flight.session.hit_tokens,
                        output_len=request.output_len,
                        reused_bytes=flight.session.reused_bytes,
                        flops_saved=model_prefill_flops(
                            self.model, flight.session.hit_tokens
                        ),
                    )
                )
                busy_seconds[flight.replica] += flight.prefill_seconds
                busy[flight.replica] = False
                push(
                    now + self.latency.decode_seconds(request.output_len),
                    EventKind.REQUEST_COMPLETE,
                    flight,
                )
                start_next(flight.replica, now)
            else:  # REQUEST_COMPLETE
                flight = event.payload
                request = flight.request
                flight.session.commit(request.full_tokens, now)
                session = sessions_by_id[request.session_id]
                next_round = request.round_index + 1
                if next_round < session.n_rounds:
                    arrival = now + session.think_times[next_round]
                    push(
                        arrival,
                        EventKind.REQUEST_ARRIVAL,
                        self._make_request(session, next_round, arrival),
                    )

        for index, cache in enumerate(self.caches):
            if hasattr(cache, "stats"):
                results[index].cache_stats = cache.stats.snapshot()
        return ClusterResult(
            router=self.router.name,
            replica_results=results,
            routed_counts=routed_counts,
            busy_seconds=busy_seconds,
        )

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def simulate_cluster(
    model: ModelConfig,
    caches: Sequence[CacheProtocol],
    router: Router,
    trace: Trace,
    latency: Optional[LatencyModel] = None,
) -> ClusterResult:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(model, caches, router, latency).run(trace)
