"""Discrete-event simulator for a cluster of cache-owning replicas.

Each replica is a prefill executor (``max_running`` concurrent slots,
default 1) with its own prefix cache (the Preble deployment model).  The
router assigns requests at *arrival*; from there a request lives entirely
on its replica: FCFS queueing, cache lookup at service start, background
decode, admission at decode end, and closed-loop scheduling of the
session's next round (which is routed afresh — a session can migrate if
the router decides so).

This simulator is an N-replica configuration of
:class:`repro.engine.kernel.SimulationKernel` with one
:class:`~repro.engine.kernel.ContinuousBatchingScheduler` per replica;
the event loop, routing dispatch, transfer execution, and telemetry live
in the kernel.

Two cluster-scale behaviours layer on top of plain routing:

* **State transfers** — steering routers (see
  :class:`~repro.cluster.router.DirectoryRouter`) may attach a
  :class:`~repro.engine.steering.TransferSpec` to a routing decision; the
  kernel charges it as an asynchronous bandwidth/latency event and lands
  the bytes in the target's second-tier store.
* **Elastic / failure scenarios** — a schedule of
  :class:`~repro.engine.steering.ScenarioEvent` entries makes replicas
  fail (sessions aborted through the transactional path, cache wiped,
  directory invalidated, orphans re-routed), drain, or join mid-trace.
  With a scenario, ``routed_counts`` counts *admissions*, so its sum
  exceeds the trace's request count by the number of re-routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.interfaces import CacheProtocol
from repro.engine.kernel import KernelConfig, SimulationKernel
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.engine.steering import ScenarioEvent, SteeringTelemetry
from repro.cluster.router import Router
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace, TraceStream


@dataclass
class ClusterResult:
    """Everything measured about one (trace, router, caches) cluster run."""

    router: str
    replica_results: list[EngineResult]
    routed_counts: list[int]
    busy_seconds: list[float]
    steering: Optional[SteeringTelemetry] = None
    router_stats: dict = field(default_factory=dict)
    directory_stats: Optional[dict] = None
    scenario: list[dict] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def n_requests(self) -> int:
        return sum(r.n_requests for r in self.replica_results)

    @property
    def token_hit_rate(self) -> float:
        """Cluster-wide tokens served from cache over total input tokens."""
        total_input = sum(
            rec.input_len for result in self.replica_results for rec in result.records
        )
        if total_input == 0:
            return 0.0
        total_hit = sum(
            rec.hit_tokens for result in self.replica_results for rec in result.records
        )
        return total_hit / total_input

    def ttfts(self) -> np.ndarray:
        """All replicas' per-request TTFTs (seconds), unordered."""
        values = [
            rec.ttft for result in self.replica_results for rec in result.records
        ]
        return np.asarray(values, dtype=np.float64)

    def ttft_percentile(self, percentile: float) -> float:
        """Cluster-wide TTFT percentile in seconds."""
        values = self.ttfts()
        if len(values) == 0:
            raise ValueError("no records to take a percentile of")
        return float(np.percentile(values, percentile))

    @property
    def load_fairness(self) -> float:
        """Jain's index over per-replica busy time (1.0 = perfectly even)."""
        return jain_fairness(self.busy_seconds)

    @property
    def load_imbalance(self) -> float:
        """Coefficient of variation of per-replica busy time."""
        return coefficient_of_variation(self.busy_seconds)

    def mean_executor_utilization(self) -> float:
        """Mean per-replica executor utilization (time-weighted, 0..1)."""
        if not self.replica_results:
            return 0.0
        values = [r.executor_utilization() for r in self.replica_results]
        return float(np.mean(values))

    # ------------------------------------------------------------------
    # Steering telemetry views
    # ------------------------------------------------------------------
    @property
    def total_transfer_bytes(self) -> int:
        """Bytes moved between replicas by state transfers."""
        return self.steering.total_transfer_bytes if self.steering else 0

    def steering_counter(self, key: str) -> int:
        """One scalar steering counter (0 when never bumped)."""
        if self.steering is None:
            return 0
        return self.steering.counters.get(key, 0)

    @property
    def overlap_seconds_saved(self) -> float:
        """TTFT seconds saved by split-point transfer/prefill overlap."""
        return self.steering.overlap_seconds_saved if self.steering else 0.0

    @property
    def directory_staleness(self) -> dict:
        """Staleness telemetry of the routing directory ({} for content-
        blind routers or deep-probe runs).  A sharded backend reports
        per-shard applied/pending update counts, dropped batches, and
        lookup-age percentiles here (see
        :meth:`repro.cluster.sharded_directory.ShardedPrefixDirectory.staleness`);
        the synchronous oracle reports its maintenance counters."""
        return dict(self.directory_stats) if self.directory_stats else {}

    def to_dict(self) -> dict:
        """JSON-ready summary: cluster aggregates, per-replica summaries,
        steering/directory telemetry, and the scenario schedule."""
        from repro.metrics.export import summary_dict

        out: dict = {
            "router": self.router,
            "n_replicas": self.n_replicas,
            "n_requests": self.n_requests,
            "token_hit_rate": self.token_hit_rate,
            "routed_counts": list(self.routed_counts),
            "busy_seconds": list(self.busy_seconds),
            "load_fairness": self.load_fairness,
            "load_imbalance": self.load_imbalance,
            "mean_executor_utilization": self.mean_executor_utilization(),
            "replicas": [summary_dict(result) for result in self.replica_results],
        }
        if self.n_requests:
            out["ttft_p50"] = self.ttft_percentile(50)
            out["ttft_p95"] = self.ttft_percentile(95)
        if self.steering is not None:
            out["steering"] = self.steering.to_dict()
        if self.router_stats:
            out["router_stats"] = dict(self.router_stats)
        if self.directory_stats is not None:
            out["directory"] = dict(self.directory_stats)
        if self.scenario:
            out["scenario"] = list(self.scenario)
        return out


class ClusterSimulator:
    """Replays one trace through R replicas under one routing policy."""

    def __init__(
        self,
        model: ModelConfig,
        caches: Sequence[CacheProtocol],
        router: Router,
        latency: Optional[LatencyModel] = None,
        max_running: int = 1,
        seed: int = 0,
        record_timeseries: bool = True,
        scenario: Optional[Sequence[ScenarioEvent]] = None,
    ) -> None:
        if not caches:
            raise ValueError("need at least one replica cache")
        self.model = model
        self.caches = list(caches)
        self.router = router
        self.latency = latency or LatencyModel()
        self.scenario = list(scenario) if scenario else []
        self.config = KernelConfig(
            max_running=max_running, seed=seed, record_timeseries=record_timeseries
        )

    def run(self, trace: Trace | TraceStream) -> ClusterResult:
        """Simulate the full trace across all replicas under the router."""
        kernel = SimulationKernel(
            self.model,
            self.caches,
            self.latency,
            router=self.router,
            config=self.config,
            policy_names=[
                f"{self.router.name}/replica{i}" for i in range(len(self.caches))
            ],
            scenario=self.scenario,
        )
        run = kernel.run(trace)
        result = ClusterResult(
            router=self.router.name,
            replica_results=run.replica_results,
            routed_counts=run.routed_counts,
            busy_seconds=run.busy_seconds,
            steering=run.steering,
            router_stats=getattr(self.router, "decision_stats", {}) or {},
            directory_stats=getattr(self.router, "directory_stats", None),
            scenario=[event.to_dict() for event in self.scenario],
        )
        # Run-end teardown: detach the router's tree observers so the
        # caches stop paying directory maintenance outside cluster runs.
        release = getattr(self.router, "release", None)
        if release is not None:
            release()
        return result


def simulate_cluster(
    model: ModelConfig,
    caches: Sequence[CacheProtocol],
    router: Router,
    trace: Trace | TraceStream,
    latency: Optional[LatencyModel] = None,
    max_running: int = 1,
    scenario: Optional[Sequence[ScenarioEvent]] = None,
) -> ClusterResult:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(
        model, caches, router, latency, max_running, scenario=scenario
    ).run(trace)
