"""Discrete-event simulator for a cluster of cache-owning replicas.

Each replica is a prefill executor (``max_running`` concurrent slots,
default 1) with its own prefix cache (the Preble deployment model).  The
router assigns requests at *arrival*; from there a request lives entirely
on its replica: FCFS queueing, cache lookup at service start, background
decode, admission at decode end, and closed-loop scheduling of the
session's next round (which is routed afresh — a session can migrate if
the router decides so).

This simulator is an N-replica configuration of
:class:`repro.engine.kernel.SimulationKernel` with one
:class:`~repro.engine.kernel.ContinuousBatchingScheduler` per replica;
the event loop, routing dispatch, and telemetry live in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.interfaces import CacheProtocol
from repro.engine.kernel import KernelConfig, SimulationKernel
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.cluster.router import Router
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace


@dataclass
class ClusterResult:
    """Everything measured about one (trace, router, caches) cluster run."""

    router: str
    replica_results: list[EngineResult]
    routed_counts: list[int]
    busy_seconds: list[float]

    @property
    def n_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def n_requests(self) -> int:
        return sum(r.n_requests for r in self.replica_results)

    @property
    def token_hit_rate(self) -> float:
        """Cluster-wide tokens served from cache over total input tokens."""
        total_input = sum(
            rec.input_len for result in self.replica_results for rec in result.records
        )
        if total_input == 0:
            return 0.0
        total_hit = sum(
            rec.hit_tokens for result in self.replica_results for rec in result.records
        )
        return total_hit / total_input

    def ttfts(self) -> np.ndarray:
        """All replicas' per-request TTFTs (seconds), unordered."""
        values = [
            rec.ttft for result in self.replica_results for rec in result.records
        ]
        return np.asarray(values, dtype=np.float64)

    def ttft_percentile(self, percentile: float) -> float:
        """Cluster-wide TTFT percentile in seconds."""
        values = self.ttfts()
        if len(values) == 0:
            raise ValueError("no records to take a percentile of")
        return float(np.percentile(values, percentile))

    @property
    def load_fairness(self) -> float:
        """Jain's index over per-replica busy time (1.0 = perfectly even)."""
        return jain_fairness(self.busy_seconds)

    @property
    def load_imbalance(self) -> float:
        """Coefficient of variation of per-replica busy time."""
        return coefficient_of_variation(self.busy_seconds)

    def mean_executor_utilization(self) -> float:
        """Mean per-replica executor utilization (time-weighted, 0..1)."""
        if not self.replica_results:
            return 0.0
        values = [r.executor_utilization() for r in self.replica_results]
        return float(np.mean(values))


class ClusterSimulator:
    """Replays one trace through R replicas under one routing policy."""

    def __init__(
        self,
        model: ModelConfig,
        caches: Sequence[CacheProtocol],
        router: Router,
        latency: Optional[LatencyModel] = None,
        max_running: int = 1,
        seed: int = 0,
        record_timeseries: bool = True,
    ) -> None:
        if not caches:
            raise ValueError("need at least one replica cache")
        self.model = model
        self.caches = list(caches)
        self.router = router
        self.latency = latency or LatencyModel()
        self.config = KernelConfig(
            max_running=max_running, seed=seed, record_timeseries=record_timeseries
        )

    def run(self, trace: Trace) -> ClusterResult:
        """Simulate the full trace across all replicas under the router."""
        kernel = SimulationKernel(
            self.model,
            self.caches,
            self.latency,
            router=self.router,
            config=self.config,
            policy_names=[
                f"{self.router.name}/replica{i}" for i in range(len(self.caches))
            ],
        )
        run = kernel.run(trace)
        return ClusterResult(
            router=self.router.name,
            replica_results=run.replica_results,
            routed_counts=run.routed_counts,
            busy_seconds=run.busy_seconds,
        )


def simulate_cluster(
    model: ModelConfig,
    caches: Sequence[CacheProtocol],
    router: Router,
    trace: Trace,
    latency: Optional[LatencyModel] = None,
    max_running: int = 1,
) -> ClusterResult:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(model, caches, router, latency, max_running).run(trace)
