"""Routing policies for multi-replica stateful serving.

A router sees each request at arrival (tokens, session, per-replica load)
and picks the replica that will serve it.  The policies span the design
space the Preble paper maps: load-only (round-robin, least-loaded),
locality-only (session affinity), and the combined prefix-affinity policy
that chases cached prefixes but spills to less-loaded replicas when the
preferred one is overloaded.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Sequence

import numpy as np

from repro.core.interfaces import as_token_array


def probe_hit_tokens(cache: Any, tokens: np.ndarray) -> int:
    """Read-only estimate of the hit a cache would serve for ``tokens``.

    For radix-tree caches this mirrors the real hit rule (deepest exactly
    matching checkpoint for hybrid models, raw match length for pure
    Transformers) without mutating the tree.  Caches without a tree (e.g.
    block stores) may expose their own ``probe`` method; anything else
    reports 0, which degrades prefix affinity into least-loaded routing.
    """
    tokens = as_token_array(tokens)
    if len(tokens) == 0:
        return 0
    probe = getattr(cache, "probe", None)
    if callable(probe):
        return int(probe(tokens))
    tree = getattr(cache, "tree", None)
    model = getattr(cache, "model", None)
    if tree is None:
        return 0
    match = tree.match(tokens)
    if model is not None and getattr(model, "has_recurrent_layers", False):
        node = match.deepest_ssm_node(max_seq_len=len(tokens) - 1)
        return node.seq_len if node is not None else 0
    return min(match.matched_len, len(tokens) - 1)


class Router(abc.ABC):
    """Chooses a replica index for each arriving request."""

    name: str = "abstract"

    @abc.abstractmethod
    def route(
        self,
        tokens: np.ndarray,
        session_id: int,
        caches: Sequence[Any],
        loads: Sequence[int],
        now: float,
    ) -> int:
        """Pick a replica.  ``loads`` are per-replica in-flight request counts."""

    def reset(self) -> None:
        """Clear any internal state."""


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of content or load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, tokens, session_id, caches, loads, now) -> int:
        index = self._next % len(caches)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastLoadedRouter(Router):
    """Send each request to the replica with the fewest in-flight requests.

    Ties rotate round-robin: under light load (all replicas idle) a fixed
    tie-break would pile every request onto replica 0 and thrash its cache
    while the others sit empty.
    """

    name = "least_loaded"

    def __init__(self) -> None:
        self._rotation = 0

    def _pick(self, loads: Sequence[int]) -> int:
        floor = min(loads)
        candidates = [i for i, load in enumerate(loads) if load == floor]
        choice = candidates[self._rotation % len(candidates)]
        self._rotation += 1
        return choice

    def route(self, tokens, session_id, caches, loads, now) -> int:
        return self._pick(loads)

    def reset(self) -> None:
        self._rotation = 0


class SessionAffinityRouter(Router):
    """Hash each session to a fixed replica (sticky sessions).

    Keeps within-session (input + output) reuse intact but spreads shared
    cross-session prefixes over all replicas, each of which must cache its
    own copy.
    """

    name = "session_affinity"

    def route(self, tokens, session_id, caches, loads, now) -> int:
        digest = zlib.crc32(int(session_id).to_bytes(8, "little", signed=True))
        return digest % len(caches)


class PrefixAffinityRouter(Router):
    """Route to the replica holding the longest cached prefix (Preble-style).

    ``max_imbalance`` bounds how much queueing the affinity is worth: when
    the preferred replica's in-flight count exceeds the cluster minimum by
    more than this many requests, the request spills to the least-loaded
    replica instead (it will re-warm that cache for its session's later
    rounds).  Requests with no cached prefix anywhere go least-loaded with
    a rotating tie-break, spreading cold sessions across the cluster.
    """

    name = "prefix_affinity"

    def __init__(self, max_imbalance: int = 4) -> None:
        if max_imbalance < 0:
            raise ValueError(f"max_imbalance must be non-negative, got {max_imbalance}")
        self.max_imbalance = max_imbalance
        self._fallback = LeastLoadedRouter()

    def route(self, tokens, session_id, caches, loads, now) -> int:
        hits = [probe_hit_tokens(cache, tokens) for cache in caches]
        best = int(max(range(len(caches)), key=lambda i: (hits[i], -loads[i], -i)))
        floor = min(loads)
        if hits[best] == 0 or loads[best] - floor > self.max_imbalance:
            return self._fallback._pick(loads)
        return best

    def reset(self) -> None:
        self._fallback.reset()


_ROUTERS = {
    "round_robin": RoundRobinRouter,
    "least_loaded": LeastLoadedRouter,
    "session_affinity": SessionAffinityRouter,
    "prefix_affinity": PrefixAffinityRouter,
}

ROUTER_NAMES: tuple[str, ...] = tuple(sorted(_ROUTERS))


def make_router(name: str, **kwargs: Any) -> Router:
    """Instantiate a router by name (see :data:`ROUTER_NAMES`)."""
    try:
        factory = _ROUTERS[name]
    except KeyError:
        raise KeyError(f"unknown router {name!r}; known: {ROUTER_NAMES}") from None
    return factory(**kwargs)
