"""Routing policies for multi-replica stateful serving.

A router sees each request at arrival (tokens, session, per-replica load)
and picks the replica that will serve it.  The policies span the design
space the Preble paper maps: load-only (round-robin, least-loaded),
locality-only (session affinity), and the combined prefix-affinity policy
that chases cached prefixes but spills to less-loaded replicas when the
preferred one is overloaded.

Prefix-aware policies answer "who holds my prefix?" from the shared
:class:`~repro.cluster.directory.PrefixDirectory` — one O(query-depth)
walk per request, maintained incrementally from each replica's tree
events — instead of deep-probing every replica tree (the legacy
behaviour, kept behind ``probe="deep"`` and property-tested
decision-identical).  :class:`DirectoryRouter` additionally *steers*
state: when the load-balanced choice lacks a prefix another replica
holds, it applies a per-request compute-or-load rule and plans a
cross-replica transfer that the simulation kernel charges as an
asynchronous bandwidth/latency event.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.interfaces import as_token_array
from repro.core.tokens import TokenSeq
from repro.cluster.directory import DirectoryLookup, PrefixDirectory
from repro.engine.steering import (
    RouteDecision,
    SplitSpec,
    TransferSpec,
    pick_least_loaded,
    plan_split,
)

_U64_MASK = (1 << 64) - 1


def probe_hit_tokens(cache: Any, tokens: np.ndarray) -> int:
    """Read-only estimate of the hit a cache would serve for ``tokens``.

    For radix-tree caches this mirrors the real hit rule (deepest exactly
    matching checkpoint for hybrid models, raw match length for pure
    Transformers) without mutating the tree.  Caches without a tree (e.g.
    block stores) may expose their own ``probe`` method; anything else
    reports 0, which degrades prefix affinity into least-loaded routing.

    Callers probing many replicas should pass an already-canonical int32
    array (see :func:`~repro.core.interfaces.as_token_array`); the
    coercion then short-circuits instead of re-running per replica.
    """
    if isinstance(tokens, TokenSeq):
        seq = tokens  # interned handle: the tree walk reuses its bytes
        tokens = seq.arr
    elif not (
        isinstance(tokens, np.ndarray)
        and tokens.dtype == np.int32
        and tokens.ndim == 1
    ):
        seq = tokens = as_token_array(tokens)
    else:
        seq = tokens
    if len(tokens) == 0:
        return 0
    probe = getattr(cache, "probe", None)
    if callable(probe):
        return int(probe(tokens))
    tree = getattr(cache, "tree", None)
    model = getattr(cache, "model", None)
    if tree is None:
        return 0
    match = tree.match(seq)
    if model is not None and getattr(model, "has_recurrent_layers", False):
        node = match.deepest_ssm_node(max_seq_len=len(tokens) - 1)
        return node.seq_len if node is not None else 0
    return min(match.matched_len, len(tokens) - 1)


class Router(abc.ABC):
    """Chooses a replica index for each arriving request."""

    name: str = "abstract"

    @abc.abstractmethod
    def route(
        self,
        tokens: np.ndarray,
        session_id: int,
        caches: Sequence[Any],
        loads: Sequence[int],
        now: float,
    ) -> int:
        """Pick a replica.  ``loads`` are per-replica in-flight request counts."""

    def decide(
        self,
        tokens: np.ndarray,
        session_id: int,
        caches: Sequence[Any],
        loads: Sequence[int],
        now: float,
    ) -> RouteDecision:
        """Full steering verdict (replica + optional state transfer).

        The base implementation wraps :meth:`route` with no transfer, so
        every load/locality router keeps its exact legacy behaviour.
        """
        return RouteDecision(self.route(tokens, session_id, caches, loads, now))

    def prepare(self, model: Any, caches: Sequence[Any], latency: Any) -> None:
        """Run-start hook: the kernel hands the router its world (model,
        replica caches, latency model) before the first arrival."""

    def on_replica_joined(self, index: int, cache: Any) -> None:
        """A replica joined the cluster mid-run at ``index``."""

    def on_replica_left(self, index: int) -> None:
        """Replica ``index`` failed or was removed; forget its state."""

    def release(self) -> None:
        """Run-end hook: detach from the replica caches (observers,
        directories).  Routing again later re-attaches lazily."""

    @property
    def directory_stats(self) -> Optional[dict]:
        """Maintenance counters of the router's prefix directory, if any."""
        return None

    @property
    def decision_stats(self) -> dict[str, int]:
        """Steering-decision counters (empty for content-blind routers)."""
        return {}

    def reset(self) -> None:
        """Clear any internal state."""


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of content or load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, tokens, session_id, caches, loads, now) -> int:
        index = self._next % len(caches)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class LeastLoadedRouter(Router):
    """Send each request to the replica with the fewest in-flight requests.

    Ties rotate round-robin: under light load (all replicas idle) a fixed
    tie-break would pile every request onto replica 0 and thrash its cache
    while the others sit empty.
    """

    name = "least_loaded"

    def __init__(self) -> None:
        self._rotation = 0

    def _pick(self, loads: Sequence[int]) -> int:
        choice = pick_least_loaded(loads, self._rotation)
        self._rotation += 1
        return choice

    def route(self, tokens, session_id, caches, loads, now) -> int:
        return self._pick(loads)

    def reset(self) -> None:
        self._rotation = 0


class SessionAffinityRouter(Router):
    """Hash each session to a fixed replica (sticky sessions).

    Keeps within-session (input + output) reuse intact but spreads shared
    cross-session prefixes over all replicas, each of which must cache its
    own copy.
    """

    name = "session_affinity"

    def route(self, tokens, session_id, caches, loads, now) -> int:
        # Reduce mod 2^64 before serializing: ids beyond the signed-64-bit
        # range (UUID-ish external ids) must hash, not raise.  For ids that
        # already fit, the masked bytes are the same two's-complement
        # encoding as before, so placements are unchanged.
        digest = zlib.crc32((int(session_id) & _U64_MASK).to_bytes(8, "little"))
        return digest % len(caches)


class PrefixAffinityRouter(Router):
    """Route to the replica holding the longest cached prefix (Preble-style).

    ``max_imbalance`` bounds how much queueing the affinity is worth: when
    the preferred replica's in-flight count exceeds the cluster minimum by
    more than this many requests, the request spills to the least-loaded
    replica instead (it will re-warm that cache for its session's later
    rounds).  Requests with no cached prefix anywhere go least-loaded with
    a rotating tie-break, spreading cold sessions across the cluster.

    ``probe`` selects how per-replica hits are measured: ``"directory"``
    reads the incrementally maintained
    :class:`~repro.cluster.directory.PrefixDirectory` in one O(query-depth)
    walk; ``"deep"`` is the legacy O(replicas x tree) per-request probe of
    every replica tree; ``"auto"`` (default) picks per fleet size — deep
    probing below ``auto_threshold`` replicas (where per-arrival directory
    maintenance costs more than a handful of tree walks — the small-fleet
    regression ``BENCH_router.json`` exposed at 4 replicas), the directory
    at or above it.  All modes are decision-identical (property-tested);
    replicas the directory cannot track (tree-less caches, caches with
    their own ``probe`` method) transparently fall back to the deep probe.

    The directory backend is pluggable: pass ``directory=`` to share one
    externally owned instance (e.g. a
    :class:`~repro.cluster.sharded_directory.ShardedPrefixDirectory`)
    across several routers in a contention experiment — the router
    attaches replicas but never closes a shared backend — or
    ``directory_factory=`` to have the router build and own a fresh
    backend per fleet.  Either forces directory mode under ``"auto"``.
    """

    name = "prefix_affinity"

    def __init__(
        self,
        max_imbalance: int = 4,
        probe: str = "auto",
        auto_threshold: int = 8,
        directory: Optional[Any] = None,
        directory_factory: Optional[Any] = None,
    ) -> None:
        if max_imbalance < 0:
            raise ValueError(f"max_imbalance must be non-negative, got {max_imbalance}")
        if probe not in ("auto", "directory", "deep"):
            raise ValueError(
                f"probe must be 'auto', 'directory' or 'deep', got {probe!r}"
            )
        if auto_threshold < 1:
            raise ValueError(f"auto_threshold must be >= 1, got {auto_threshold}")
        if directory is not None and directory_factory is not None:
            raise ValueError("pass either directory or directory_factory, not both")
        if probe == "deep" and (directory is not None or directory_factory is not None):
            raise ValueError("a directory backend is incompatible with probe='deep'")
        self.max_imbalance = max_imbalance
        self.probe_mode = probe
        self.auto_threshold = auto_threshold
        self._fallback = LeastLoadedRouter()
        self._shared_directory = directory
        self._directory_factory = directory_factory
        self._directory: Optional[Any] = None
        self._owns_directory = False
        self._cache_ids: Optional[list[int]] = None
        self._rules: list[str] = []  # per-replica hit rule, cached at bind
        self._stats: dict[str, int] = {}

    # -- directory plumbing --------------------------------------------
    @property
    def directory(self) -> Optional[Any]:
        if self._directory is not None:
            return self._directory
        return self._shared_directory

    @property
    def directory_stats(self) -> Optional[dict]:
        directory = self.directory
        if directory is None:
            return None
        return directory.staleness()

    @property
    def decision_stats(self) -> dict[str, int]:
        return dict(self._stats)

    def _bump(self, key: str) -> None:
        self._stats[key] = self._stats.get(key, 0) + 1

    def _mode(self, n_replicas: int) -> str:
        """The effective probe mode for a fleet of ``n_replicas``."""
        if self.probe_mode != "auto":
            return self.probe_mode
        if self._shared_directory is not None or self._directory_factory is not None:
            return "directory"
        return "directory" if n_replicas >= self.auto_threshold else "deep"

    def prepare(self, model, caches, latency) -> None:
        # Run-start hook: rebuild the directory even for an unchanged
        # fleet (a prior run's scenario may have detached failed replicas
        # that this run revives) and start decision counters fresh.
        self._stats = {}
        if self._mode(len(caches)) == "directory":
            self._bind(caches, force=True)

    def _bind(self, caches: Sequence[Any], force: bool = False) -> None:
        """(Re-)attach the directory to ``caches``; idempotent per fleet
        unless ``force`` requests a rebuild."""
        ids = [id(cache) for cache in caches]
        if not force and self._directory is not None and ids == self._cache_ids:
            return
        if self._owns_directory and self._directory is not None:
            self._directory.close()
        if self._shared_directory is not None:
            # Shared backend: attach is idempotent (and rebinds a slot
            # whose cache changed), so several routers can bind the same
            # fleet to one directory without fighting over it.
            self._directory = self._shared_directory
            self._owns_directory = False
        else:
            factory = self._directory_factory or PrefixDirectory
            self._directory = factory()
            self._owns_directory = True
        self._cache_ids = ids
        self._rules = []
        for index, cache in enumerate(caches):
            self._directory.attach(index, cache)
            self._rules.append(self._rule_for(index, cache))

    def _rule_for(self, index: int, cache: Any) -> str:
        assert self._directory is not None
        if not self._directory.tracked(index):
            return "fallback"
        model = getattr(cache, "model", None)
        if model is not None and getattr(model, "has_recurrent_layers", False):
            return "ckpt"
        return "kv"

    def on_replica_joined(self, index: int, cache: Any) -> None:
        if self._directory is not None:
            self._directory.attach(index, cache)
            assert self._cache_ids is not None
            self._cache_ids.append(id(cache))
            self._rules.append(self._rule_for(index, cache))

    def on_replica_left(self, index: int) -> None:
        if self._directory is not None:
            self._directory.detach(index)

    # -- hit measurement -----------------------------------------------
    def _lookup(self, tokens: np.ndarray) -> DirectoryLookup:
        assert self._directory is not None
        return self._directory.lookup(tokens, limit=len(tokens) - 1)

    def _hits(
        self,
        tokens: np.ndarray,
        caches: Sequence[Any],
        lookup: Optional[DirectoryLookup] = None,
    ) -> list[int]:
        """Per-replica hit estimates, decision-identical across modes."""
        if self._mode(len(caches)) == "deep":
            return [probe_hit_tokens(cache, tokens) for cache in caches]
        self._bind(caches)
        if lookup is None:
            lookup = self._lookup(tokens)
        cap = max(len(tokens) - 1, 0)
        ckpt_depth = lookup.ckpt_depth
        kv_matched = lookup.kv_matched
        hits: list[int] = []
        for index, rule in enumerate(self._rules):
            if rule == "ckpt":
                hits.append(ckpt_depth.get(index, 0))
            elif rule == "kv":
                kv = kv_matched.get(index, 0)
                hits.append(kv if kv < cap else cap)
            else:
                hits.append(probe_hit_tokens(caches[index], tokens))
        return hits

    def _select(self, hits: Sequence[int], loads: Sequence[int]) -> int:
        """The affinity-vs-spill rule, shared by both probe modes."""
        best = int(max(range(len(hits)), key=lambda i: (hits[i], -loads[i], -i)))
        floor = min(loads)
        if hits[best] == 0 or loads[best] - floor > self.max_imbalance:
            self._bump("spilled" if hits[best] > 0 else "cold")
            return self._fallback._pick(loads)
        self._bump("affinity")
        return best

    def route(self, tokens, session_id, caches, loads, now) -> int:
        if not isinstance(tokens, TokenSeq):
            tokens = as_token_array(tokens)  # canonicalize once, not per replica
        return self._select(self._hits(tokens, caches), loads)

    def release(self) -> None:
        """Detach an *owned* directory's observers from the replica caches
        so they stop paying maintenance once the run is over; the next
        route()/prepare() rebuilds (and resyncs) lazily.  A shared backend
        stays attached — other routers may still be reading it; whoever
        owns it closes it."""
        if self._owns_directory and self._directory is not None:
            self._directory.close()
            self._directory = None
            self._owns_directory = False
            self._cache_ids = None
            self._rules = []

    def reset(self) -> None:
        self._fallback.reset()
        self._stats = {}
        self.release()


class DirectoryRouter(PrefixAffinityRouter):
    """Directory-driven steering: prefix affinity plus state transfers.

    Routing follows the same affinity/spill rule as
    :class:`PrefixAffinityRouter` (always in directory mode).  On top of
    it, when the chosen replica's local hit is shallower than the best
    hit elsewhere in the cluster, the router applies a per-request
    **compute-or-load rule**: fetch the hot prefix's self-contained state
    (recurrent checkpoint + prefix KVs) from the owning replica if the
    modeled transfer + second-tier fetch time beats recomputing the
    missing span, otherwise recompute locally.  Planned transfers are
    executed by the simulation kernel as asynchronous bandwidth-charged
    events that land in the target's second-tier store, from which the
    existing tiering promotion path serves the request.

    With ``split=True`` (the default) the compute-or-load rule generalizes
    to **compute-or-load-or-both**: every checkpoint depth the source holds
    on the query path (``DirectoryLookup.ckpt_depths``) is a candidate
    split point, priced as the head transfer overlapped with the tail
    recompute (:func:`repro.engine.steering.plan_split`); an interior
    split is planned only when its estimate strictly beats both
    all-or-nothing endpoints, so ``split=False`` reproduces the legacy
    (PR-4) decisions byte-identically.

    ``transfer_min_tokens`` suppresses transfers for spans too short to
    matter; ``migrate=True`` moves (rather than copies) second-tier
    entries off the source.
    """

    name = "directory"

    def __init__(
        self,
        max_imbalance: int = 4,
        transfer: bool = True,
        transfer_min_tokens: int = 64,
        migrate: bool = False,
        split: bool = True,
        directory: Optional[Any] = None,
        directory_factory: Optional[Any] = None,
    ) -> None:
        super().__init__(
            max_imbalance=max_imbalance,
            probe="directory",
            directory=directory,
            directory_factory=directory_factory,
        )
        if transfer_min_tokens < 1:
            raise ValueError(
                f"transfer_min_tokens must be >= 1, got {transfer_min_tokens}"
            )
        self.transfer_enabled = transfer
        self.transfer_min_tokens = transfer_min_tokens
        self.migrate = migrate
        self.split_enabled = split
        self._model: Any = None
        self._latency: Any = None

    def prepare(self, model, caches, latency) -> None:
        super().prepare(model, caches, latency)
        self._model = model
        self._latency = latency

    def decide(self, tokens, session_id, caches, loads, now) -> RouteDecision:
        if not isinstance(tokens, TokenSeq):
            tokens = as_token_array(tokens)
        self._bind(caches)
        lookup = self._lookup(tokens)
        hits = self._hits(tokens, caches, lookup=lookup)
        replica = self._select(hits, loads)
        transfer = self._plan_transfer(tokens, caches, hits, lookup, replica)
        return RouteDecision(replica, transfer)

    def _plan_transfer(
        self,
        tokens: np.ndarray,
        caches: Sequence[Any],
        hits: Sequence[int],
        lookup: DirectoryLookup,
        target: int,
    ) -> Optional[TransferSpec]:
        if not self.transfer_enabled or self._model is None or self._latency is None:
            return None
        model, latency = self._model, self._latency
        if not getattr(model, "has_recurrent_layers", False):
            return None  # only checkpointed prefixes travel self-contained
        if not hasattr(caches[target], "receive_state_transfer"):
            return None  # target has no second-tier landing zone
        local = hits[target]
        source, depth = -1, local
        for replica, ckpt_depth in lookup.ckpt_depth.items():
            if replica != target and ckpt_depth > depth:
                source, depth = replica, ckpt_depth
        if source < 0 or depth - local < self.transfer_min_tokens:
            return None
        plan = plan_split(
            model,
            latency,
            len(tokens),
            local,
            lookup.ckpt_depths.get(source, (depth,)),
            min_tokens=self.transfer_min_tokens,
            allow_split=self.split_enabled,
        )
        if plan is None or plan.mode == "recompute":
            self._bump("chose_recompute")
            return None
        if plan.mode == "load":
            self._bump("chose_load")
            return TransferSpec(
                source=source,
                target=target,
                tokens=tokens[:depth].copy(),
                nbytes=int(plan.nbytes),
                migrate=self.migrate,
            )
        self._bump("chose_split")
        return SplitSpec(
            source=source,
            target=target,
            tokens=tokens[: plan.depth].copy(),
            nbytes=int(plan.nbytes),
            migrate=self.migrate,
            split_depth=plan.depth,
            total_len=len(tokens),
            tail_flops=plan.tail_flops,
            head_flops=plan.head_flops,
        )


class HierarchicalRouter(PrefixAffinityRouter):
    """Two-tier (rack/region) prefix routing for large fleets.

    Replicas are grouped into racks of ``rack_size`` consecutive indices
    (mid-run joins extend the last rack or open a new one).  Tier 1 picks
    the rack whose best replica holds the deepest prefix, breaking ties
    toward the lightest rack; tier 2 applies the usual affinity/spill
    rule *within* that rack only, so an overloaded preferred replica
    spills to a rack-mate — which shares top-of-rack bandwidth and warms
    a nearby cache — instead of scattering the session across the fleet.
    Cold requests (no cached prefix anywhere) fall back to the global
    least-loaded pick, seeding racks evenly.

    ``rack_max_imbalance`` bounds the tier-2 spill (defaults to
    ``max_imbalance``).  Fleets no larger than one rack degrade to plain
    :class:`PrefixAffinityRouter` behaviour by construction.
    """

    name = "hierarchical"

    def __init__(
        self,
        rack_size: int = 8,
        max_imbalance: int = 4,
        rack_max_imbalance: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(max_imbalance=max_imbalance, **kwargs)
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        if rack_max_imbalance is None:
            rack_max_imbalance = max_imbalance
        if rack_max_imbalance < 0:
            raise ValueError(
                f"rack_max_imbalance must be non-negative, got {rack_max_imbalance}"
            )
        self.rack_size = rack_size
        self.rack_max_imbalance = rack_max_imbalance
        self._rack_rotation = 0

    def rack_of(self, replica: int) -> int:
        return replica // self.rack_size

    def _select(self, hits: Sequence[int], loads: Sequence[int]) -> int:
        n = len(hits)
        size = self.rack_size
        if n <= size:
            return super()._select(hits, loads)
        n_racks = (n + size - 1) // size
        members = [range(r * size, min((r + 1) * size, n)) for r in range(n_racks)]

        def rack_key(rack: int) -> tuple[int, int, int]:
            rows = members[rack]
            return (
                max(hits[i] for i in rows),
                -min(loads[i] for i in rows),
                -rack,
            )

        rack = max(range(n_racks), key=rack_key)
        rows = members[rack]
        best = max(rows, key=lambda i: (hits[i], -loads[i], -i))
        if hits[best] == 0:
            self._bump("cold")
            return self._fallback._pick(loads)
        floor = min(loads[i] for i in rows)
        if loads[best] - floor > self.rack_max_imbalance:
            # Spill stays rack-local: least-loaded rack-mate, rotating ties.
            self._bump("rack_spilled")
            pick = pick_least_loaded([loads[i] for i in rows], self._rack_rotation)
            self._rack_rotation += 1
            return rows[pick]
        self._bump("rack_affinity")
        return best

    def reset(self) -> None:
        super().reset()
        self._rack_rotation = 0


_ROUTERS = {
    "round_robin": RoundRobinRouter,
    "least_loaded": LeastLoadedRouter,
    "session_affinity": SessionAffinityRouter,
    "prefix_affinity": PrefixAffinityRouter,
    "directory": DirectoryRouter,
    "hierarchical": HierarchicalRouter,
}

ROUTER_NAMES: tuple[str, ...] = tuple(sorted(_ROUTERS))


def make_router(name: str, **kwargs: Any) -> Router:
    """Instantiate a router by name (see :data:`ROUTER_NAMES`)."""
    try:
        factory = _ROUTERS[name]
    except KeyError:
        raise KeyError(f"unknown router {name!r}; known: {ROUTER_NAMES}") from None
    return factory(**kwargs)
