"""Sharded prefix directory with bounded staleness for fleet-scale routing.

:class:`~repro.cluster.directory.PrefixDirectory` is a single, perfectly
synchronous oracle: every replica tree event lands in one index before the
next routing decision reads it.  That abstraction cannot model — or
survive — a fleet of hundreds of replicas behind many concurrent routers,
where directory state is necessarily partitioned and replicated with a
delay.  :class:`ShardedPrefixDirectory` is the production-shaped variant:

* **Sharding by prefix region.**  The token space is partitioned into
  regions keyed by the crc32 chain over the first ``region_tokens``
  tokens — the same per-prefix hash chain :class:`~repro.core.tokens.
  TokenSeq` interning already maintains, so kernel-driven lookups hash in
  O(1).  Regions map to shards through a consistent-hash ring (virtual
  nodes), so shard loss remaps only the dead shard's regions.

* **Exact single-shard lookups.**  Every shard stores the regions it owns
  at full depth and *every other* region truncated to ``region_tokens``.
  Any query/entry pair agreeing beyond ``region_tokens`` tokens shares a
  region by construction (their first ``region_tokens`` tokens are
  equal), so the owner shard answers deep matches exactly, while matches
  shorter than ``region_tokens`` are answered exactly from the truncated
  replicas present on all shards.  With ``propagation_delay=0`` the
  sharded directory is therefore *lookup- and decision-identical* to the
  oracle for any shard count — the invariant the differential suite in
  ``tests/test_sharded_directory.py`` pins.

* **Bounded staleness.**  With ``propagation_delay > 0`` replica tree
  events are enqueued per shard and applied only once the simulation
  clock passes ``enqueue_time + propagation_delay``, in batches of at
  most ``gossip_budget`` updates per flush.  Flushes ride the kernel's
  virtual clock as ``EventKind.DIRECTORY_SYNC`` events via a pluggable
  transport (:meth:`ShardedPrefixDirectory.connect_transport`); outside a
  kernel, :class:`ManualGossipTransport` or :meth:`ShardedPrefixDirectory.
  pump` drive time by hand.  Stale lookups may report coverage a replica
  already evicted (routers fall back to recompute; the kernel validates
  transfer sources) or miss coverage that exists (a cold route, never a
  correctness issue).

* **Fault injection.**  :meth:`fail_shard` kills a shard: its state is
  lost, its regions remap across the ring, and anti-entropy resyncs
  rebuild the remapped regions on the surviving shards after one
  propagation delay.  :meth:`drop_gossip` discards a shard's next flush
  batch(es); each drop schedules a recovery resync, so convergence is
  delayed, never lost.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Optional

import numpy as np
from zlib import crc32

from repro.core.node import RadixNode
from repro.core.radix_tree import TreeObserver
from repro.core.tokens import TokenSeq, canonical_token_array
from repro.cluster.directory import DirectoryLookup, PrefixDirectory

# Update-op kinds (ints, not an enum: applied in the gossip hot loop).
_MARK = 0
_CLEAR_BEYOND = 1
_TRUNCATE = 2
_CKPT_SET = 3
_CKPT_CLEAR = 4
_INVALIDATE = 5
_RESYNC = 6

_EMPTY_KEY = crc32(b"")


class DirectoryUpdate:
    """One replica tree event, serialized for gossip.

    ``tokens`` is the full root path the event names (``None`` for
    replica-wide ops); ``depth`` is the op's depth argument (mark extent,
    clear keep-depth, checkpoint depth); ``rkey`` is the event's region
    key (hash of the first ``region_tokens`` path tokens), computed once
    at ingest; ``snapshot`` carries a resync's ``(path, has_ckpt)`` node
    list, captured at event time so delayed application replays the state
    the event saw, not the state at apply time.
    """

    __slots__ = ("kind", "replica", "tokens", "depth", "rkey", "snapshot")

    def __init__(
        self,
        kind: int,
        replica: int,
        tokens: Optional[np.ndarray] = None,
        depth: int = 0,
        rkey: int = 0,
        snapshot: Optional[list] = None,
    ) -> None:
        self.kind = kind
        self.replica = replica
        self.tokens = tokens
        self.depth = depth
        self.rkey = rkey
        self.snapshot = snapshot


class _HashRing:
    """Consistent-hash ring mapping region keys to live shard indices.

    Each shard contributes ``vnodes`` points; removal (shard loss) deletes
    only that shard's points, so surviving assignments are untouched —
    the property that keeps recovery traffic proportional to the lost
    shard's share of the key space.
    """

    __slots__ = ("_points", "_owners")

    def __init__(self, shards: int, vnodes: int) -> None:
        pairs: list[tuple[int, int]] = []
        for shard in range(shards):
            for v in range(vnodes):
                pairs.append((crc32(b"shard:%d#%d" % (shard, v)), shard))
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def remove(self, shard: int) -> None:
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key: int) -> Optional[int]:
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, key)
        if index == len(self._points):
            index = 0
        return self._owners[index]


class ManualGossipTransport:
    """A hand-cranked clock + callback queue for transport-mode tests.

    Mirrors the kernel transport's surface (``now()`` / ``schedule``);
    :meth:`run_until` advances time and fires scheduled flushes in
    timestamp order, so staleness behaviour can be exercised without a
    simulation kernel.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._serial = 0
        self._queue: list[tuple[float, int, Any]] = []

    def now(self) -> float:
        return self._now

    def schedule(self, time: float, callback: Any) -> None:
        self._serial += 1
        bisect.insort(self._queue, (max(time, self._now), self._serial, callback))

    def run_until(self, time: float) -> None:
        """Advance to ``time``, firing every callback due on the way."""
        while self._queue and self._queue[0][0] <= time:
            due, _, callback = self._queue.pop(0)
            self._now = max(self._now, due)
            callback(self._now)
        self._now = max(self._now, time)


class _Shard:
    """One shard: a bare :class:`PrefixDirectory` as the region store plus
    its gossip queue and staleness counters."""

    __slots__ = (
        "index",
        "directory",
        "pending",
        "alive",
        "flush_scheduled",
        "drop_armed",
        "applied",
        "flushes",
        "dropped_batches",
        "dropped_updates",
        "peak_pending",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.directory = PrefixDirectory()
        # FIFO of (ready_time, enqueue_time, update); ready times are
        # monotone because enqueue times are (the clock never reverses).
        self.pending: deque[tuple[float, float, DirectoryUpdate]] = deque()
        self.alive = True
        self.flush_scheduled = False
        self.drop_armed = 0
        self.applied = 0
        self.flushes = 0
        self.dropped_batches = 0
        self.dropped_updates = 0
        self.peak_pending = 0


class _ShardedView(TreeObserver):
    """Per-replica observer bridge: tree events become gossip updates."""

    def __init__(self, directory: "ShardedPrefixDirectory", replica: int) -> None:
        self.directory = directory
        self.replica = replica

    def on_node_added(self, node: RadixNode) -> None:
        tokens = node.path_tokens()
        self.directory._ingest_path_op(_MARK, self.replica, tokens, len(tokens))

    def on_leaf_removed(self, node: RadixNode, parent: RadixNode) -> None:
        tokens = np.concatenate([parent.path_tokens(), node.edge_tokens])
        self.directory._ingest_path_op(
            _CLEAR_BEYOND, self.replica, tokens, parent.seq_len
        )

    def on_leaf_truncated(self, node: RadixNode) -> None:
        tokens = node.path_tokens()
        self.directory._ingest_path_op(_TRUNCATE, self.replica, tokens, len(tokens))

    def on_checkpoint_changed(self, node: RadixNode) -> None:
        tokens = node.path_tokens()
        kind = _CKPT_SET if node.has_ssm_state else _CKPT_CLEAR
        self.directory._ingest_path_op(kind, self.replica, tokens, node.seq_len)

    # Splits/merges/pins/touches don't change cached content (see the
    # oracle's bridge for the argument); nothing to gossip.
    def on_edge_split(self, middle: RadixNode, child: RadixNode) -> None: ...

    def on_merged(self, node: RadixNode, child: RadixNode) -> None: ...

    def on_pin_changed(self, node: RadixNode) -> None: ...

    def on_touched(self, node: RadixNode) -> None: ...

    def on_tree_attached(self, tree: Any) -> None:
        self.directory._ingest_resync(self.replica, tree)


class ShardedPrefixDirectory:
    """Drop-in :class:`PrefixDirectory` replacement with sharding and
    bounded staleness (see the module docstring for the model).

    ``propagation_delay=0`` with default gossip settings applies updates
    synchronously — the conformance mode the differential suite pins
    against the oracle.  ``gossip_budget`` caps updates applied per flush;
    ``gossip_interval`` (default: the propagation delay) spaces the
    flushes a budget-throttled shard retries at.
    """

    def __init__(
        self,
        n_shards: int = 4,
        region_tokens: int = 32,
        propagation_delay: float = 0.0,
        gossip_budget: Optional[int] = None,
        gossip_interval: Optional[float] = None,
        vnodes: int = 16,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if region_tokens < 1:
            raise ValueError(f"region_tokens must be >= 1, got {region_tokens}")
        if propagation_delay < 0:
            raise ValueError(
                f"propagation_delay must be non-negative, got {propagation_delay}"
            )
        if gossip_budget is not None and gossip_budget < 1:
            raise ValueError(f"gossip_budget must be >= 1, got {gossip_budget}")
        self.n_shards = n_shards
        self.region_tokens = region_tokens
        self.propagation_delay = propagation_delay
        self.gossip_budget = gossip_budget
        self._synchronous = (
            propagation_delay == 0 and gossip_budget is None and gossip_interval is None
        )
        if gossip_interval is None:
            gossip_interval = propagation_delay
        if not self._synchronous and gossip_interval <= 0:
            raise ValueError(
                "gossip_interval must be positive when gossip is asynchronous"
            )
        self.gossip_interval = gossip_interval
        self.shards = [_Shard(i) for i in range(n_shards)]
        self._ring = _HashRing(n_shards, vnodes)
        self._views: dict[int, _ShardedView] = {}
        self._caches: dict[int, Any] = {}
        self._tracked: set[int] = set()
        self._transport: Optional[Any] = None
        self._time = 0.0
        # Aggregate counters (per-shard structural stats live on the
        # shards' own DirectoryStats).
        self.events = 0
        self.lookups = 0
        self.invalidations = 0
        self.resyncs = 0
        self.untracked_replicas = 0
        self.shard_losses = 0
        self.updates_enqueued = 0
        self.updates_dropped = 0
        self._lookup_ages: list[float] = []

    # ------------------------------------------------------------------
    # Clock / transport
    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._transport is not None:
            return self._transport.now()
        return self._time

    def advance_to(self, time: float) -> None:
        """Move the standalone clock forward (transport-less use only)."""
        self._time = max(self._time, time)

    def connect_transport(self, transport: Optional[Any]) -> None:
        """Attach the flush scheduler (kernel event queue or manual).

        Replaces any previous transport: stale flush reservations pointed
        at the old transport's (now dead) queue, so they are cleared and
        shards with pending updates reschedule on the new one.
        """
        self._transport = transport
        for shard in self.shards:
            shard.flush_scheduled = False
            if transport is not None and shard.alive and shard.pending:
                self._schedule_flush(shard, shard.pending[0][0])

    def _schedule_flush(self, shard: _Shard, ready: float) -> None:
        if self._transport is None or shard.flush_scheduled:
            return
        shard.flush_scheduled = True
        when = max(ready, self._now())
        self._transport.schedule(
            when, lambda now, shard=shard: self._flush_shard(shard, now)
        )

    # ------------------------------------------------------------------
    # Replica lifecycle (the PrefixDirectory protocol)
    # ------------------------------------------------------------------
    def attach(self, replica: int, cache: Any) -> bool:
        """Start tracking ``replica``; False means deep-probe fallback
        (same contract as the oracle's :meth:`PrefixDirectory.attach`)."""
        if replica in self._views:
            if self._caches.get(replica) is cache:
                return replica in self._tracked
            self.detach(replica)  # same slot, different cache: rebind
        view = _ShardedView(self, replica)
        self._views[replica] = view
        self._caches[replica] = cache
        attach = getattr(cache, "add_tree_observer", None)
        if (
            callable(getattr(cache, "probe", None))
            or attach is None
            or not attach(view)
        ):
            self.untracked_replicas += 1
            return False
        self._tracked.add(replica)
        tree = getattr(cache, "tree", None)
        if tree is not None:
            self._ingest_resync(replica, tree)
        return True

    def tracked(self, replica: int) -> bool:
        return replica in self._tracked

    @property
    def replicas(self) -> tuple[int, ...]:
        return tuple(sorted(self._tracked))

    def invalidate(self, replica: int) -> None:
        """Drop every entry of ``replica`` (failure/removal) — gossiped
        like any other update, so stale shards keep answering with the
        dead replica until the invalidation propagates (the race the
        kernel's dead-target fallbacks absorb)."""
        self.invalidations += 1
        self._ingest(DirectoryUpdate(_INVALIDATE, replica))

    def detach(self, replica: int) -> None:
        view = self._views.pop(replica, None)
        cache = self._caches.pop(replica, None)
        if view is not None and cache is not None:
            remove = getattr(cache, "remove_tree_observer", None)
            if callable(remove):
                remove(view)
        if replica in self._tracked:
            self._tracked.discard(replica)
            self.invalidate(replica)

    def close(self) -> None:
        for replica in list(self._views):
            self.detach(replica)
        self.connect_transport(None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _region_key(self, tokens: Any) -> int:
        k = len(tokens)
        if k == 0:
            return _EMPTY_KEY
        if k > self.region_tokens:
            k = self.region_tokens
        if isinstance(tokens, TokenSeq):
            return tokens.prefix_hash(k)
        arr = canonical_token_array(tokens)
        return crc32(arr[:k].tobytes())

    def shard_for(self, tokens: Any) -> Optional[int]:
        """The live shard owning ``tokens``' region (None: all shards lost)."""
        return self._ring.lookup(self._region_key(tokens))

    def lookup(self, tokens: Any, limit: Optional[int] = None) -> DirectoryLookup:
        """Single-shard walk on the region owner (exact at zero delay)."""
        self.lookups += 1
        owner = self._ring.lookup(self._region_key(tokens))
        if owner is None:
            return DirectoryLookup()
        shard = self.shards[owner]
        if shard.pending:
            self._lookup_ages.append(max(0.0, self._now() - shard.pending[0][1]))
        else:
            self._lookup_ages.append(0.0)
        return shard.directory.lookup(tokens, limit)

    # ------------------------------------------------------------------
    # Ingest / gossip
    # ------------------------------------------------------------------
    def _ingest_path_op(
        self, kind: int, replica: int, tokens: np.ndarray, depth: int
    ) -> None:
        self._ingest(
            DirectoryUpdate(
                kind, replica, tokens, depth, rkey=self._region_key(tokens)
            )
        )

    def _ingest_resync(self, replica: int, tree: Any) -> None:
        """Snapshot ``tree`` *now* and gossip it as one resync update."""
        self.resyncs += 1
        snapshot: list[tuple[np.ndarray, bool]] = []
        root = getattr(tree, "root", None)
        if root is not None:
            stack: list[tuple[RadixNode, np.ndarray]] = [
                (child, child.edge_tokens) for child in root.children.values()
            ]
            while stack:
                node, path = stack.pop()
                snapshot.append((path, bool(node.has_ssm_state)))
                stack.extend(
                    (child, np.concatenate([path, child.edge_tokens]))
                    for child in node.children.values()
                )
        self._ingest(DirectoryUpdate(_RESYNC, replica, snapshot=snapshot))

    def _ingest(self, update: DirectoryUpdate) -> None:
        self.events += 1
        if self._synchronous:
            for shard in self.shards:
                if shard.alive:
                    self._apply(shard, update)
                    shard.applied += 1
            return
        now = self._now()
        ready = now + self.propagation_delay
        for shard in self.shards:
            if not shard.alive:
                continue
            self._enqueue(shard, update, now, ready)

    def _enqueue(
        self, shard: _Shard, update: DirectoryUpdate, now: float, ready: float
    ) -> None:
        shard.pending.append((ready, now, update))
        self.updates_enqueued += 1
        if len(shard.pending) > shard.peak_pending:
            shard.peak_pending = len(shard.pending)
        self._schedule_flush(shard, ready)

    def _flush_shard(self, shard: _Shard, now: float) -> None:
        """Apply one gossip batch (transport callback)."""
        shard.flush_scheduled = False
        if not shard.alive:
            shard.pending.clear()
            return
        if shard.drop_armed > 0:
            # The batch is lost in transit: discard everything that would
            # have applied now and schedule an anti-entropy resync.
            shard.drop_armed -= 1
            shard.dropped_batches += 1
            dropped_replicas: set[int] = set()
            while shard.pending and shard.pending[0][0] <= now:
                _, _, update = shard.pending.popleft()
                shard.dropped_updates += 1
                self.updates_dropped += 1
                dropped_replicas.add(update.replica)
            self._recover(shard, dropped_replicas, now)
        else:
            shard.flushes += 1
            budget = self.gossip_budget
            applied = 0
            while shard.pending and shard.pending[0][0] <= now:
                if budget is not None and applied >= budget:
                    break
                _, _, update = shard.pending.popleft()
                self._apply(shard, update)
                applied += 1
            shard.applied += applied
        if shard.pending:
            head = shard.pending[0][0]
            self._schedule_flush(shard, head if head > now else now + self.gossip_interval)

    def _recover(self, shard: _Shard, replicas: set[int], now: float) -> None:
        """Re-announce ``replicas``' full state to ``shard`` (anti-entropy
        after a dropped batch or a shard loss remap)."""
        ready = now + self.propagation_delay
        for replica in sorted(replicas):
            if replica not in self._tracked:
                continue
            tree = getattr(self._caches.get(replica), "tree", None)
            snapshot: list[tuple[np.ndarray, bool]] = []
            root = getattr(tree, "root", None)
            if root is not None:
                stack = [(child, child.edge_tokens) for child in root.children.values()]
                while stack:
                    node, path = stack.pop()
                    snapshot.append((path, bool(node.has_ssm_state)))
                    stack.extend(
                        (child, np.concatenate([path, child.edge_tokens]))
                        for child in node.children.values()
                    )
            update = DirectoryUpdate(_RESYNC, replica, snapshot=snapshot)
            if self._synchronous:
                self._apply(shard, update)
                shard.applied += 1
            else:
                self._enqueue(shard, update, now, ready)

    def pump(self, upto: Optional[float] = None) -> int:
        """Apply every update eligible by ``upto`` (default: now) on every
        shard, ignoring the gossip budget — the transport-less test hook.
        Returns the number of updates applied."""
        if upto is not None:
            self.advance_to(upto)
        now = self._now()
        total = 0
        for shard in self.shards:
            if not shard.alive:
                continue
            while shard.pending and shard.pending[0][0] <= now:
                _, _, update = shard.pending.popleft()
                self._apply(shard, update)
                shard.applied += 1
                total += 1
        return total

    # ------------------------------------------------------------------
    # Op application (owner-full / foreign-truncated)
    # ------------------------------------------------------------------
    def _apply(self, shard: _Shard, update: DirectoryUpdate) -> None:
        d = shard.directory
        r = update.replica
        kind = update.kind
        if kind == _MARK:
            upto = update.depth
            if self._ring.lookup(update.rkey) != shard.index:
                upto = min(upto, self.region_tokens)
            if upto > 0:
                d._mark(r, update.tokens, upto)
        elif kind == _CLEAR_BEYOND:
            # The walk self-limits to what the shard stores, so foreign
            # shards clear exactly their truncated copy.
            d._clear_beyond(r, update.tokens, update.depth)
        elif kind == _TRUNCATE:
            d._truncate(r, update.tokens)
        elif kind == _CKPT_SET:
            if (
                update.depth <= self.region_tokens
                or self._ring.lookup(update.rkey) == shard.index
            ):
                d._set_ckpt(r, update.tokens, update.depth)
            else:
                # Foreign shards never store checkpoints past the region
                # boundary — only the coverage the mark implies.
                d._mark(r, update.tokens, self.region_tokens)
        elif kind == _CKPT_CLEAR:
            if (
                update.depth <= self.region_tokens
                or self._ring.lookup(update.rkey) == shard.index
            ):
                d._clear_ckpt(r, update.tokens, update.depth)
        elif kind == _INVALIDATE:
            d._clear_replica(r)
            d.stats.invalidations += 1
        else:  # _RESYNC
            d._clear_replica(r)
            d.stats.resyncs += 1
            region_tokens = self.region_tokens
            for path, has_ckpt in update.snapshot:
                depth = len(path)
                full = (
                    depth <= region_tokens
                    or self._ring.lookup(self._region_key(path)) == shard.index
                )
                if full:
                    d._mark(r, path, depth)
                    if has_ckpt:
                        d._set_ckpt(r, path, depth)
                else:
                    d._mark(r, path, region_tokens)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_shard(self, index: int) -> None:
        """Kill shard ``index``: its state and queue are lost, its regions
        remap across the ring, and the remapped owners rebuild from
        anti-entropy resyncs after one propagation delay."""
        if not 0 <= index < self.n_shards:
            raise ValueError(f"no shard {index} in a {self.n_shards}-shard directory")
        shard = self.shards[index]
        if not shard.alive:
            return
        shard.alive = False
        shard.pending.clear()
        shard.flush_scheduled = False
        shard.directory = PrefixDirectory()
        self._ring.remove(index)
        self.shard_losses += 1
        now = self._now()
        for survivor in self.shards:
            if survivor.alive:
                self._recover(survivor, set(self._tracked), now)

    def drop_gossip(self, shard: Optional[int] = None, batches: int = 1) -> None:
        """Arm the next ``batches`` flushes of ``shard`` (or of every
        shard) to be dropped in transit; recovery resyncs follow."""
        if batches < 1:
            raise ValueError(f"batches must be >= 1, got {batches}")
        targets = self.shards if shard is None else [self.shards[shard]]
        for s in targets:
            s.drop_armed += batches

    @property
    def live_shards(self) -> int:
        return sum(1 for shard in self.shards if shard.alive)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _age_percentile(self, q: float) -> float:
        ages = self._lookup_ages
        if not ages:
            return 0.0
        return float(np.percentile(np.asarray(ages), q))

    def staleness(self) -> dict:
        """Aggregate + per-shard staleness snapshot (exported with cluster
        results; superset of the oracle's counter names that still apply)."""
        per_shard = []
        for shard in self.shards:
            stats = shard.directory.stats
            stats.applied_updates = shard.applied
            stats.pending_updates = len(shard.pending)
            stats.dropped_updates = shard.dropped_updates
            entry = stats.to_dict()
            entry.update(
                shard=shard.index,
                alive=shard.alive,
                flushes=shard.flushes,
                dropped_batches=shard.dropped_batches,
                peak_pending=shard.peak_pending,
            )
            per_shard.append(entry)
        return {
            "backend": "sharded",
            "n_shards": self.n_shards,
            "live_shards": self.live_shards,
            "region_tokens": self.region_tokens,
            "propagation_delay": self.propagation_delay,
            "gossip_budget": self.gossip_budget,
            "gossip_interval": self.gossip_interval,
            "events": self.events,
            "lookups": self.lookups,
            "invalidations": self.invalidations,
            "resyncs": self.resyncs,
            "untracked_replicas": self.untracked_replicas,
            "shard_losses": self.shard_losses,
            "updates_enqueued": self.updates_enqueued,
            "updates_applied": sum(shard.applied for shard in self.shards),
            "updates_pending": sum(len(shard.pending) for shard in self.shards),
            "updates_dropped": self.updates_dropped,
            "n_nodes": sum(
                shard.directory.stats.n_nodes for shard in self.shards if shard.alive
            ),
            "lookup_age_p50": self._age_percentile(50),
            "lookup_age_p95": self._age_percentile(95),
            "lookup_age_max": max(self._lookup_ages, default=0.0),
            "per_shard": per_shard,
        }

    def check_integrity(self) -> None:
        """Per-shard structural invariants plus the sharding contract:
        foreign-region checkpoints never exceed the region depth."""
        for shard in self.shards:
            if not shard.alive:
                assert not shard.pending, "dead shard with queued gossip"
                continue
            shard.directory.check_integrity()
            for node in shard.directory.iter_nodes():
                if node.ckpt and node.end > self.region_tokens:
                    path = node.parent
                    tokens: list[np.ndarray] = [node.edge]
                    while path is not None and path.parent is not None:
                        tokens.append(path.edge)
                        path = path.parent
                    full = np.concatenate(tokens[::-1])
                    owner = self._ring.lookup(self._region_key(full))
                    assert owner == shard.index, (
                        "deep checkpoint stored on a non-owner shard"
                    )
