"""Cluster-level stateful serving: per-replica caches plus a prefix-aware router.

Preble (Srivatsa et al., cited in the paper's related work) shows that when
every GPU keeps its own prefix cache, the *router* becomes part of the
caching policy: sending a request to the replica that already holds its
longest prefix turns an R-way split cache back into (almost) one big cache,
while naive load balancing scatters sessions and destroys reuse.

This package provides the routing policies and a multi-replica
discrete-event simulator to measure that effect with hybrid-model caches,
where the stakes are higher than for Transformers: a mis-routed request
doesn't just lose part of its KV reuse, it loses the *all-or-nothing*
recurrent-state hit entirely.
"""

from repro.cluster.router import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    make_router,
    probe_hit_tokens,
)
from repro.cluster.simulator import ClusterResult, ClusterSimulator, simulate_cluster

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "SessionAffinityRouter",
    "PrefixAffinityRouter",
    "make_router",
    "probe_hit_tokens",
    "ClusterSimulator",
    "ClusterResult",
    "simulate_cluster",
]
