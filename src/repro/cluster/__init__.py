"""Cluster-level stateful serving: per-replica caches plus cache steering.

Preble (Srivatsa et al., cited in the paper's related work) shows that when
every GPU keeps its own prefix cache, the *router* becomes part of the
caching policy: sending a request to the replica that already holds its
longest prefix turns an R-way split cache back into (almost) one big cache,
while naive load balancing scatters sessions and destroys reuse.

This package provides that routing layer and grows it into a full
steering subsystem:

* :mod:`repro.cluster.router` — the routing policies, including the
  directory-backed prefix affinity and the transfer-planning
  :class:`DirectoryRouter`;
* :mod:`repro.cluster.directory` — the router-side global prefix
  directory, an incrementally maintained radix index mapping prefixes to
  replica sets (one O(query-depth) lookup per request instead of
  deep-probing every replica tree);
* :mod:`repro.cluster.simulator` — the multi-replica discrete-event
  simulator, with cross-replica state transfers and elastic/failure
  scenario schedules (replicas failing, draining, and joining mid-trace).

The stakes are higher for hybrid-model caches than for Transformers: a
mis-routed request doesn't just lose part of its KV reuse, it loses the
*all-or-nothing* recurrent-state hit entirely.
"""

from repro.cluster.directory import DirectoryLookup, DirectoryStats, PrefixDirectory
from repro.cluster.router import (
    DirectoryRouter,
    HierarchicalRouter,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    make_router,
    probe_hit_tokens,
)
from repro.cluster.sharded_directory import (
    ManualGossipTransport,
    ShardedPrefixDirectory,
)
from repro.cluster.simulator import ClusterResult, ClusterSimulator, simulate_cluster
from repro.engine.steering import (
    NoRoutableReplicaError,
    RouteDecision,
    ScenarioEvent,
    SplitSpec,
    TransferSpec,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "SessionAffinityRouter",
    "PrefixAffinityRouter",
    "DirectoryRouter",
    "HierarchicalRouter",
    "make_router",
    "probe_hit_tokens",
    "PrefixDirectory",
    "ShardedPrefixDirectory",
    "ManualGossipTransport",
    "DirectoryLookup",
    "DirectoryStats",
    "NoRoutableReplicaError",
    "RouteDecision",
    "TransferSpec",
    "SplitSpec",
    "ScenarioEvent",
    "ClusterSimulator",
    "ClusterResult",
    "simulate_cluster",
]
