"""Bootstrap tuning of the FLOP-efficiency weight alpha (paper section 4.2).

Marconi balances recency against FLOP efficiency with a single weight.  The
paper tunes it online: start at ``alpha = 0`` (pure LRU) until the first
eviction — before that, eviction decisions don't exist so there is nothing
to tune — then snapshot the radix tree, keep serving with LRU while
recording a bootstrap window of ``5-15x`` the requests seen so far, and
finally grid-search alpha by replaying the recorded window against the
snapshot, adopting the hit-rate-maximizing value.

The paper parallelizes the grid search across CPU cores to hide its
latency; the replay here is synchronous (the adopted alpha is identical,
only wall-clock differs), which keeps the tuner deterministic and
dependency-free.  Each replay replica inherits the main cache's eviction
mode (see :meth:`repro.core.cache.MarconiCache.make_replay_cache`), so the
grid search runs against the incrementally maintained eviction index —
seeded once per alpha from the cloned snapshot — rather than paying the
legacy full-tree rescans per replayed eviction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.cache import MarconiCache
    from repro.core.radix_tree import RadixTree


class TunerPhase(enum.Enum):
    """Lifecycle of the tuner: LRU warmup → recording → tuned."""

    WARMUP = "warmup"
    BOOTSTRAP = "bootstrap"
    TUNED = "tuned"


@dataclass(frozen=True)
class AlphaTunerConfig:
    """Knobs for the bootstrap grid search.

    ``bootstrap_multiplier`` follows the paper's "5-15x the number of
    requests seen before the first eviction"; the default sits at the
    midpoint — calibration showed the low end records a window of mostly
    *young* sessions (short contexts) whose replay overstates how much
    FLOP-awareness pays on narrow-length workloads.  The min/max clamps
    keep tiny and enormous workloads sane.
    """

    alpha_grid: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0)
    bootstrap_multiplier: float = 10.0
    min_bootstrap_requests: int = 8
    max_bootstrap_requests: int = 256
    adoption_margin: float = 0.03
    plateau_tolerance: float = 0.02

    def __post_init__(self) -> None:
        if not self.alpha_grid:
            raise ValueError("alpha_grid must be non-empty")
        if any(a < 0 for a in self.alpha_grid):
            raise ValueError("alpha values must be non-negative")
        if self.bootstrap_multiplier <= 0:
            raise ValueError("bootstrap_multiplier must be positive")
        if not 0 < self.min_bootstrap_requests <= self.max_bootstrap_requests:
            raise ValueError("need 0 < min_bootstrap_requests <= max_bootstrap_requests")
        if self.adoption_margin < 0 or self.plateau_tolerance < 0:
            raise ValueError("margins must be non-negative")


@dataclass
class _LoggedRequest:
    now: float
    input_len: int
    full_tokens: np.ndarray


class AlphaTuner:
    """Drives the warmup → bootstrap → tuned state machine for one cache."""

    def __init__(self, config: AlphaTunerConfig) -> None:
        self.config = config
        self.phase = TunerPhase.WARMUP
        self.tuned_alpha: Optional[float] = None
        self.search_results: dict[float, float] = {}
        self._evictions = 0
        self._warmup_requests = 0
        self._bootstrap_target = 0
        self._snapshot: Optional["RadixTree"] = None
        self._log: list[_LoggedRequest] = []

    # ------------------------------------------------------------------
    # Hooks called by the cache
    # ------------------------------------------------------------------
    def note_eviction(self) -> None:
        """Record that the cache evicted an entry."""
        self._evictions += 1

    def after_request(
        self,
        cache: "MarconiCache",
        now: float,
        input_len: int,
        full_tokens: np.ndarray,
    ) -> None:
        """Advance the state machine after a completed request."""
        if self.phase is TunerPhase.TUNED:
            return
        if self.phase is TunerPhase.WARMUP:
            self._warmup_requests += 1
            if self._evictions > 0:
                self._enter_bootstrap(cache)
            return
        # BOOTSTRAP: record this request, then tune once the window fills.
        self._log.append(
            _LoggedRequest(now=now, input_len=input_len, full_tokens=full_tokens)
        )
        if len(self._log) >= self._bootstrap_target:
            self._tune(cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enter_bootstrap(self, cache: "MarconiCache") -> None:
        self._snapshot = cache.snapshot_for_replay()
        raw_target = self.config.bootstrap_multiplier * max(1, self._warmup_requests)
        self._bootstrap_target = int(
            min(
                max(raw_target, self.config.min_bootstrap_requests),
                self.config.max_bootstrap_requests,
            )
        )
        self.phase = TunerPhase.BOOTSTRAP

    def _tune(self, cache: "MarconiCache") -> None:
        assert self._snapshot is not None
        self.search_results = {
            alpha: self._replay_hit_rate(cache, alpha)
            for alpha in self.config.alpha_grid
        }
        self.tuned_alpha = self._select_alpha(self.search_results)
        cache.set_alpha(self.tuned_alpha)
        self.phase = TunerPhase.TUNED
        # The replay log is no longer needed; free the token arrays.
        self._log = []
        self._snapshot = None

    def _select_alpha(self, results: dict[float, float]) -> float:
        """Adopt the hit-rate-maximizing alpha, robustly.

        The bootstrap window is a finite sample, so two guards temper the raw
        argmax: leaving the LRU behaviour (``alpha = 0``) requires beating it
        by ``adoption_margin`` (relative), and among values within
        ``plateau_tolerance`` of the best we adopt the *smallest* alpha —
        the least aggressive configuration that realizes the win.
        """
        best_rate = max(results.values())
        lru_rate = results.get(0.0, 0.0)
        if best_rate <= lru_rate * (1.0 + self.config.adoption_margin):
            return 0.0
        threshold = best_rate * (1.0 - self.config.plateau_tolerance)
        eligible = [a for a, rate in results.items() if rate >= threshold]
        return min(eligible)

    def _replay_hit_rate(self, cache: "MarconiCache", alpha: float) -> float:
        assert self._snapshot is not None
        replica = cache.make_replay_cache(alpha, self._snapshot)
        for entry in self._log:
            with replica.begin(
                entry.full_tokens[: entry.input_len], entry.now
            ) as session:
                session.commit(entry.full_tokens, entry.now)
        return replica.stats.token_hit_rate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_tuned(self) -> bool:
        return self.phase is TunerPhase.TUNED

    @property
    def bootstrap_progress(self) -> tuple[int, int]:
        """(recorded, target) during bootstrap; (0, 0) otherwise."""
        if self.phase is not TunerPhase.BOOTSTRAP:
            return (0, 0)
        return (len(self._log), self._bootstrap_target)
