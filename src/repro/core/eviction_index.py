"""Incrementally maintained eviction-candidate index.

The seed implementation of :meth:`MarconiCache._ensure_free` rebuilt the
candidate set with a full ``tree.iter_nodes()`` DFS — plus a FLOP-efficiency
recomputation per candidate — on *every* iteration of the eviction loop,
making sustained cache pressure O(n²·log n).  This module replaces the
rescan with a :class:`~repro.core.radix_tree.TreeObserver` that tracks the
evictable set — nodes with at most one child, unpinned, and with positive
freeable bytes — as the tree changes.

Maintenance is *lazy*: every observer callback only marks the touched node
dirty (an O(1) dict write), and dirty nodes are re-evaluated in one batch
the next time anything reads the index (``candidates()``, ``get``,
``len``, ``epoch``, ``node_visits``).  Readers therefore always see the
eagerly-maintained state, while write-heavy churn between selections —
pin/unpin round-trips of a request path, multiple touches of the same hot
node, transient structure during a split — collapses to at most one
re-evaluation per node per read.  A node whose evaluation key (freeable
bytes, recency, shape) round-trips back unchanged between two reads keeps
its candidate object and bumps nothing.

Cached per-candidate values (``freeable_bytes``, ``flop_efficiency``, the
precomputed ``sort_key``) are invalidated by *rebuilding the candidate
object*, so policies can use object identity as a staleness check.  A
monotonically increasing ``epoch`` stamps every change to the candidate
set; the FLOP-aware policy reuses its rank-normalized eviction order for as
long as the epoch stands still.

``node_visits`` counts candidacy evaluations — the index-side analogue of
the seed's per-eviction full-tree node visits — so the microbenchmark can
assert the amortized win.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.eviction import EvictionCandidate
from repro.core.node import RadixNode
from repro.core.radix_tree import RadixTree, TreeObserver

FreeableFn = Callable[[RadixNode], int]
EfficiencyFn = Callable[[RadixNode, int], float]


class EvictionIndex(TreeObserver):
    """The maintained evictable set of one radix tree.

    Parameters
    ----------
    tree:
        The tree to observe.  The index registers itself as an observer and
        seeds the candidate set with one full scan (the only full scan it
        ever performs).
    freeable_fn:
        ``node -> bytes`` the cache would reclaim by evicting the node (the
        full entry for a leaf, checkpoint-only for a single-child node).
    efficiency_fn:
        ``(node, freeable_bytes) -> float`` FLOP efficiency of the node as
        an eviction candidate.
    """

    def __init__(
        self,
        tree: RadixTree,
        freeable_fn: FreeableFn,
        efficiency_fn: EfficiencyFn,
    ) -> None:
        self._tree = tree
        self._freeable_fn = freeable_fn
        self._efficiency_fn = efficiency_fn
        self._entries: dict[int, EvictionCandidate] = {}
        # (freeable, last_access, is_leaf, seq_len, parent_seq_len) of the
        # last evaluation; when unchanged, the cached candidate stands.
        self._eval_keys: dict[int, tuple] = {}
        # Nodes whose state may have changed since the last read; flushed
        # (re-evaluated once each) before the index answers anything.
        self._dirty: dict[int, RadixNode] = {}
        self._snapshot: Optional[list[EvictionCandidate]] = None
        self._epoch = 0
        self._node_visits = 0
        self.on_candidate_changed: Optional[Callable[[EvictionCandidate], None]] = None
        tree.add_observer(self)
        self.rebuild()

    # ------------------------------------------------------------------
    # Queries (each settles pending dirty marks first)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Change stamp of the candidate set (post-flush)."""
        if self._dirty:
            self._flush()
        return self._epoch

    @property
    def node_visits(self) -> int:
        """Total candidacy evaluations performed (post-flush)."""
        if self._dirty:
            self._flush()
        return self._node_visits

    def __len__(self) -> int:
        if self._dirty:
            self._flush()
        return len(self._entries)

    def get(self, node_id: int) -> Optional[EvictionCandidate]:
        """Current candidate for ``node_id``, or None when not evictable."""
        if self._dirty:
            self._flush()
        return self._entries.get(node_id)

    def candidates(self) -> list[EvictionCandidate]:
        """Snapshot list of all current candidates (cached per epoch)."""
        if self._dirty:
            self._flush()
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = self._snapshot = list(self._entries.values())
        return snapshot

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-seed the candidate set with one full tree scan."""
        self._entries.clear()
        self._eval_keys.clear()
        self._dirty.clear()
        self._bump()
        for node in self._tree.iter_nodes():
            self.refresh(node)

    def _flush(self) -> None:
        """Re-evaluate every dirty node once, in mark order.

        The loop body is :meth:`refresh` inlined with the per-call lookups
        hoisted — this runs a handful of times per eviction, which makes it
        the hottest code in the eviction pipeline.
        """
        dirty = self._dirty
        self._dirty = {}
        entries = self._entries
        eval_keys = self._eval_keys
        freeable_fn = self._freeable_fn
        efficiency_fn = self._efficiency_fn
        visits = 0
        for node in dirty.values():
            visits += 1
            node_id = node.node_id
            children = node.children
            if node.parent is None or node.pin_count > 0 or len(children) > 1:
                if entries.pop(node_id, None) is not None:
                    del eval_keys[node_id]
                    self._epoch += 1
                    self._snapshot = None
                continue
            freeable = freeable_fn(node)
            if freeable <= 0:
                if entries.pop(node_id, None) is not None:
                    del eval_keys[node_id]
                    self._epoch += 1
                    self._snapshot = None
                continue
            last_access = node.last_access
            eval_key = (
                freeable,
                last_access,
                not children,
                node.seq_len,
                node.parent.seq_len,
            )
            if eval_keys.get(node_id) == eval_key:
                continue
            candidate = EvictionCandidate(
                node=node,
                freeable_bytes=freeable,
                flop_efficiency=efficiency_fn(node, freeable),
                last_access=last_access,
                is_leaf=not children,
            )
            entries[node_id] = candidate
            eval_keys[node_id] = eval_key
            self._epoch += 1
            self._snapshot = None
            if self.on_candidate_changed is not None:
                self.on_candidate_changed(candidate)
        self._node_visits += visits

    def refresh(self, node: RadixNode) -> None:
        """Re-evaluate one node's candidacy and cached values (eager)."""
        self._node_visits += 1
        node_id = node.node_id
        # Inlined node.is_eviction_shaped; a detached node (parent None)
        # is dropped by the same guard.
        children = node.children
        if node.parent is None or node.pin_count > 0 or len(children) > 1:
            self._drop(node_id)
            return
        freeable = self._freeable_fn(node)
        if freeable <= 0:
            self._drop(node_id)
            return
        eval_key = (
            freeable,
            node.last_access,
            not children,  # is_leaf
            node.seq_len,
            node.parent.seq_len,
        )
        if self._eval_keys.get(node_id) == eval_key:
            return  # nothing the candidate caches has changed
        candidate = EvictionCandidate(
            node=node,
            freeable_bytes=freeable,
            flop_efficiency=self._efficiency_fn(node, freeable),
            last_access=node.last_access,
            is_leaf=not children,
        )
        self._entries[node_id] = candidate
        self._eval_keys[node_id] = eval_key
        self._bump()
        if self.on_candidate_changed is not None:
            self.on_candidate_changed(candidate)

    def _drop(self, node_id: int) -> None:
        if self._entries.pop(node_id, None) is not None:
            del self._eval_keys[node_id]
            self._bump()

    def _bump(self) -> None:
        self._epoch += 1
        self._snapshot = None

    def _mark(self, node: RadixNode) -> None:
        self._dirty[node.node_id] = node

    # ------------------------------------------------------------------
    # TreeObserver callbacks — O(1) dirty marks, settled at the next read
    # ------------------------------------------------------------------
    def on_node_added(self, node: RadixNode) -> None:
        self._dirty[node.node_id] = node
        parent = node.parent
        if parent is not None and parent.parent is not None:  # skip the root
            self._dirty[parent.node_id] = parent

    def on_edge_split(self, middle: RadixNode, child: RadixNode) -> None:
        self._dirty[middle.node_id] = middle
        self._dirty[child.node_id] = child

    def on_leaf_removed(self, node: RadixNode, parent: RadixNode) -> None:
        self._dirty[node.node_id] = node
        if parent.parent is not None:  # skip the root
            self._dirty[parent.node_id] = parent

    def on_merged(self, node: RadixNode, child: RadixNode) -> None:
        self._dirty[node.node_id] = node
        self._dirty[child.node_id] = child

    def on_leaf_truncated(self, node: RadixNode) -> None:
        self._dirty[node.node_id] = node

    # The three state-change callbacks below share a shortcut: a node that
    # is pinned *and* not currently a candidate was a non-candidate before
    # the change and stays one (pinned nodes never enter the set), so no
    # mark is needed — its fresh recency/checkpoint/freeable state is
    # re-read at the unpin mark that must precede it becoming evictable.
    def on_checkpoint_changed(self, node: RadixNode) -> None:
        if node.pin_count > 0 and node.node_id not in self._entries:
            return
        self._dirty[node.node_id] = node

    def on_pin_changed(self, node: RadixNode) -> None:
        if node.pin_count > 0 and node.node_id not in self._entries:
            return
        self._dirty[node.node_id] = node

    def on_touched(self, node: RadixNode) -> None:
        if node.pin_count > 0 and node.node_id not in self._entries:
            return
        self._dirty[node.node_id] = node
