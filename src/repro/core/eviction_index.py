"""Incrementally maintained eviction-candidate index.

The seed implementation of :meth:`MarconiCache._ensure_free` rebuilt the
candidate set with a full ``tree.iter_nodes()`` DFS — plus a FLOP-efficiency
recomputation per candidate — on *every* iteration of the eviction loop,
making sustained cache pressure O(n²·log n).  This module replaces the
rescan with a :class:`~repro.core.radix_tree.TreeObserver` that tracks the
evictable set — nodes with at most one child, unpinned, and with positive
freeable bytes — as the tree changes, re-evaluating only the neighborhood a
mutation actually touched:

===========================  =============================================
tree event                   nodes re-evaluated
===========================  =============================================
leaf added                   the leaf, its parent (child count changed)
edge split                   the new middle node, the shortened child
leaf removed                 dropped; its parent (may become evictable)
single-child node merged     dropped; the absorbing child (KVs grew)
leaf truncated               the leaf (freeable bytes shrank)
checkpoint set / cleared     the node (freeable bytes changed)
pin / unpin                  each node on the pinned path
touch / access refresh       the node (recency key changed)
===========================  =============================================

Cached per-candidate values (``freeable_bytes``, ``flop_efficiency``, the
precomputed ``sort_key``) are invalidated by *rebuilding the candidate
object*, so policies can use object identity as a staleness check.  A
monotonically increasing ``epoch`` stamps every change to the candidate
set; the FLOP-aware policy reuses its rank-normalized eviction order for as
long as the epoch stands still.

``node_visits`` counts candidacy evaluations — the index-side analogue of
the seed's per-eviction full-tree node visits — so the microbenchmark can
assert the amortized win.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.eviction import EvictionCandidate
from repro.core.node import RadixNode
from repro.core.radix_tree import RadixTree, TreeObserver

FreeableFn = Callable[[RadixNode], int]
EfficiencyFn = Callable[[RadixNode, int], float]


class EvictionIndex(TreeObserver):
    """The maintained evictable set of one radix tree.

    Parameters
    ----------
    tree:
        The tree to observe.  The index registers itself as an observer and
        seeds the candidate set with one full scan (the only full scan it
        ever performs).
    freeable_fn:
        ``node -> bytes`` the cache would reclaim by evicting the node (the
        full entry for a leaf, checkpoint-only for a single-child node).
    efficiency_fn:
        ``(node, freeable_bytes) -> float`` FLOP efficiency of the node as
        an eviction candidate.
    """

    def __init__(
        self,
        tree: RadixTree,
        freeable_fn: FreeableFn,
        efficiency_fn: EfficiencyFn,
    ) -> None:
        self._tree = tree
        self._freeable_fn = freeable_fn
        self._efficiency_fn = efficiency_fn
        self._entries: dict[int, EvictionCandidate] = {}
        # (freeable, last_access, is_leaf, seq_len, parent_seq_len) of the
        # last evaluation; when unchanged, the cached candidate stands.
        self._eval_keys: dict[int, tuple] = {}
        self._snapshot: Optional[list[EvictionCandidate]] = None
        self.epoch = 0
        self.node_visits = 0
        self.on_candidate_changed: Optional[Callable[[EvictionCandidate], None]] = None
        tree.add_observer(self)
        self.rebuild()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: int) -> Optional[EvictionCandidate]:
        """Current candidate for ``node_id``, or None when not evictable."""
        return self._entries.get(node_id)

    def candidates(self) -> list[EvictionCandidate]:
        """Snapshot list of all current candidates (cached per epoch)."""
        if self._snapshot is None:
            self._snapshot = list(self._entries.values())
        return self._snapshot

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-seed the candidate set with one full tree scan."""
        self._entries.clear()
        self._eval_keys.clear()
        self._bump()
        for node in self._tree.iter_nodes():
            self.refresh(node)

    def refresh(self, node: RadixNode) -> None:
        """Re-evaluate one node's candidacy and cached values."""
        self.node_visits += 1
        node_id = node.node_id
        if not node.is_eviction_shaped:
            self._drop(node_id)
            return
        freeable = self._freeable_fn(node)
        if freeable <= 0:
            self._drop(node_id)
            return
        eval_key = (
            freeable,
            node.last_access,
            node.is_leaf,
            node.seq_len,
            node.parent_seq_len,
        )
        if self._eval_keys.get(node_id) == eval_key:
            return  # nothing the candidate caches has changed
        candidate = EvictionCandidate(
            node=node,
            freeable_bytes=freeable,
            flop_efficiency=self._efficiency_fn(node, freeable),
            last_access=node.last_access,
            is_leaf=node.is_leaf,
        )
        self._entries[node_id] = candidate
        self._eval_keys[node_id] = eval_key
        self._bump()
        if self.on_candidate_changed is not None:
            self.on_candidate_changed(candidate)

    def _drop(self, node_id: int) -> None:
        if self._entries.pop(node_id, None) is not None:
            del self._eval_keys[node_id]
            self._bump()

    def _bump(self) -> None:
        self.epoch += 1
        self._snapshot = None

    # ------------------------------------------------------------------
    # TreeObserver callbacks
    # ------------------------------------------------------------------
    def on_node_added(self, node: RadixNode) -> None:
        self.refresh(node)
        if node.parent is not None and not node.parent.is_root:
            self.refresh(node.parent)

    def on_edge_split(self, middle: RadixNode, child: RadixNode) -> None:
        self.refresh(middle)
        self.refresh(child)

    def on_leaf_removed(self, node: RadixNode, parent: RadixNode) -> None:
        self._drop(node.node_id)
        if not parent.is_root:
            self.refresh(parent)

    def on_merged(self, node: RadixNode, child: RadixNode) -> None:
        self._drop(node.node_id)
        self.refresh(child)

    def on_leaf_truncated(self, node: RadixNode) -> None:
        self.refresh(node)

    def on_checkpoint_changed(self, node: RadixNode) -> None:
        self.refresh(node)

    def on_pin_changed(self, node: RadixNode) -> None:
        if node.pin_count > 0:
            # Pinning can only remove candidacy; skip the full evaluation.
            self._drop(node.node_id)
        else:
            self.refresh(node)

    def on_touched(self, node: RadixNode) -> None:
        self.refresh(node)
