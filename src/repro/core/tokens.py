"""Interned token sequences: canonicalize once, hash once, probe many times.

Every layer of the simulator keys work off token sequences: the radix tree
matches and inserts them, ``probe_hit_tokens`` sizes hits, the cluster
directory walks them per routing decision.  The seed code re-canonicalized
(``np.asarray(..., dtype=np.int32)``) and re-serialized the same request's
tokens at each of those layers.  :class:`TokenSeq` is the one-per-request
handle that pays those costs once:

* ``arr`` — the canonical 1-D ``int32`` array every consumer agrees on;
* :meth:`tobytes` — the array's raw bytes, computed lazily and cached (the
  radix tree's full-edge fast path compares byte slices against cached
  per-node edge bytes instead of running elementwise numpy comparisons);
* :meth:`__hash__` / :meth:`prefix_hash` — a cached content hash and
  incrementally built per-prefix hashes (crc32 chain), so prefix-keyed
  lookups never rehash the whole sequence.

A ``TokenSeq`` quacks like its array (``len``, indexing, slicing,
iteration, ``np.asarray``), so it can flow through code written against
plain arrays; :func:`as_token_array` (re-exported by
``repro.core.interfaces``) unwraps it for free.

Equality and hashing follow *canonicalized content*: two ``TokenSeq``
handles (or a handle and any token sequence) are equal exactly when their
canonical int32 arrays are element-wise equal — the property the hypothesis
suite pins across dtypes, slices, and empty sequences.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional
from zlib import crc32

import numpy as np

_INT32_ITEMSIZE = 4


def canonical_token_array(tokens: Any) -> np.ndarray:
    """Coerce ``tokens`` (sequence of ints or ndarray) to a 1-D int32 array.

    The canonicalization every cache layer agrees on; ``np.asarray`` returns
    already-canonical arrays unchanged (no copy).
    """
    if isinstance(tokens, TokenSeq):
        return tokens.arr
    arr = np.asarray(tokens, dtype=np.int32)
    if arr.ndim != 1:
        raise ValueError(f"token sequence must be 1-D, got shape {arr.shape}")
    return arr


class TokenSeq:
    """An immutable, interned token sequence with cached bytes and hashes.

    Construction canonicalizes eagerly (and defensively copies arrays the
    caller could still mutate, unless ``copy=False`` promises ownership);
    everything else — bytes, hash, prefix hashes — is computed on first use
    and cached for the handle's lifetime.
    """

    __slots__ = ("arr", "_len", "_bytes", "_hash", "_prefix_hashes")

    def __init__(self, tokens: Any, *, copy: bool = True) -> None:
        arr = canonical_token_array(tokens)
        if copy and arr is tokens:
            # The caller handed us the canonical array itself; snapshot it
            # so later caller-side mutation cannot desync the caches.
            arr = arr.copy()
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        self.arr = arr
        self._len = arr.shape[0]
        self._bytes: Optional[bytes] = None
        self._hash: Optional[int] = None
        self._prefix_hashes: Optional[list[int]] = None

    @classmethod
    def of(cls, tokens: Any) -> "TokenSeq":
        """Return ``tokens`` itself when already interned, else intern it."""
        if isinstance(tokens, TokenSeq):
            return tokens
        return cls(tokens)

    # ------------------------------------------------------------------
    # Array interface (so handles flow through array-typed code)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __getitem__(self, key: Any) -> Any:
        return self.arr[key]

    def __iter__(self) -> Iterator:
        return iter(self.arr)

    def __array__(self, dtype: Any = None, copy: Any = None) -> np.ndarray:
        if dtype is None or dtype == self.arr.dtype:
            return self.arr if not copy else self.arr.copy()
        return self.arr.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenSeq(len={len(self.arr)}, hash={hash(self):#x})"

    # ------------------------------------------------------------------
    # Cached serializations
    # ------------------------------------------------------------------
    def tobytes(self) -> bytes:
        """Raw little-endian int32 bytes of the sequence (cached)."""
        data = self._bytes
        if data is None:
            data = self._bytes = self.arr.tobytes()
        return data

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self.tobytes())
        return value

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, TokenSeq):
            return self.tobytes() == other.tobytes()
        try:
            arr = canonical_token_array(other)
        except (TypeError, ValueError):
            return NotImplemented
        return len(arr) == len(self.arr) and bool(np.array_equal(self.arr, arr))

    def prefix_hash(self, length: int) -> int:
        """Content hash of ``tokens[:length]`` in O(1) after the first call.

        The full chain of per-prefix hashes is built incrementally (one
        crc32 update per token) on first use, so probing every prefix of a
        request costs O(n) total instead of O(n²) rehashing.
        """
        if not 0 <= length <= len(self.arr):
            raise ValueError(
                f"prefix length must be in [0, {len(self.arr)}], got {length}"
            )
        chain = self._prefix_hashes
        if chain is None:
            chain = [0] * (len(self.arr) + 1)
            data = self.tobytes()
            acc = 0
            for i in range(len(self.arr)):
                acc = crc32(data[i * _INT32_ITEMSIZE : (i + 1) * _INT32_ITEMSIZE], acc)
                chain[i + 1] = acc
            self._prefix_hashes = chain
        return chain[length]
