"""Cache persistence: save/restore the radix tree across server restarts.

A production cache's *bookkeeping* outlives a process: on a planned restart
an operator wants the warm tree back (which prefixes are checkpointed, how
recently, how often hit) rather than paying the cold-start hit-rate dip.
This module serializes exactly that bookkeeping — structure, checkpoint
flags, and per-node statistics — as one compressed ``.npz``.

Real model-state payloads (``store_states=True``) are deliberately *not*
persisted: they live in GPU/CPU memory and are orders of magnitude larger
than the bookkeeping; a reloaded tree serves as a warm *index* whose
checkpoints are re-materialized lazily (a lookup that maps to a payloadless
checkpoint falls back to a full prefill, exactly like
:class:`repro.serving.engine.ExactReuseServer` already handles).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.node import RadixNode
from repro.core.radix_tree import RadixTree
from repro.models.config import ModelConfig

_FORMAT_VERSION = 1


def save_cache(cache: MarconiCache, path: str | Path) -> None:
    """Serialize ``cache``'s tree and statistics to ``path`` (``.npz``).

    Refuses to save while requests are in flight (pinned paths): a pin is
    a promise to an ongoing prefill, which cannot survive a restart.
    """
    nodes = list(cache.tree.iter_nodes())
    if any(node.is_pinned for node in nodes):
        raise ValueError("cannot save a cache with in-flight (pinned) requests")

    index_of = {id(cache.tree.root): -1}
    for position, node in enumerate(nodes):
        index_of[id(node)] = position

    edge_tokens = (
        np.concatenate([node.edge_tokens for node in nodes])
        if nodes
        else np.empty(0, dtype=np.int32)
    )
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_name": cache.model.name,
        "capacity_bytes": cache.capacity_bytes,
        "used_bytes": cache.used_bytes,
        "n_nodes": len(nodes),
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        parent=np.asarray([index_of[id(n.parent)] for n in nodes], dtype=np.int64),
        edge_lengths=np.asarray([n.kv_tokens for n in nodes], dtype=np.int64),
        edge_tokens=edge_tokens.astype(np.int32),
        has_ssm_state=np.asarray([n.has_ssm_state for n in nodes], dtype=np.bool_),
        last_access=np.asarray([n.last_access for n in nodes], dtype=np.float64),
        created_at=np.asarray([n.created_at for n in nodes], dtype=np.float64),
        hit_count=np.asarray([n.hit_count for n in nodes], dtype=np.int64),
    )


def load_tree(path: str | Path) -> tuple[RadixTree, dict]:
    """Deserialize a tree saved by :func:`save_cache`; returns (tree, meta)."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported cache snapshot version {meta.get('format_version')!r}"
            )
        parent = data["parent"]
        edge_lengths = data["edge_lengths"]
        edge_tokens = data["edge_tokens"]
        has_ssm = data["has_ssm_state"]
        last_access = data["last_access"]
        created_at = data["created_at"]
        hit_count = data["hit_count"]

    tree = RadixTree()
    nodes: list[RadixNode] = []
    offsets = np.concatenate([[0], np.cumsum(edge_lengths)])
    for i in range(len(edge_lengths)):
        parent_index = int(parent[i])
        if parent_index >= i:
            raise ValueError("corrupt snapshot: parent after child in pre-order")
        parent_node = tree.root if parent_index == -1 else nodes[parent_index]
        node = RadixNode(
            edge_tokens[offsets[i] : offsets[i + 1]].copy(),
            parent=parent_node,
            now=float(created_at[i]),
        )
        node.has_ssm_state = bool(has_ssm[i])
        node.last_access = float(last_access[i])
        node.hit_count = int(hit_count[i])
        parent_node.children[node.first_token] = node
        nodes.append(node)
    tree.check_integrity()
    return tree, meta


def load_cache(
    model: ModelConfig,
    capacity_bytes: int,
    path: str | Path,
    **cache_kwargs,
) -> MarconiCache:
    """Rebuild a warm :class:`MarconiCache` from a snapshot.

    The snapshot's model name must match ``model`` (byte accounting is
    architecture-specific).  Loading into a *smaller* capacity is allowed:
    the cache immediately evicts, using its configured policy, until the
    warm contents fit.
    """
    tree, meta = load_tree(path)
    if meta["model_name"] != model.name:
        raise ValueError(
            f"snapshot was taken for model {meta['model_name']!r}, "
            f"not {model.name!r}"
        )
    cache = MarconiCache(model, capacity_bytes, **cache_kwargs)
    cache.tree = tree  # property setter re-seeds the eviction index
    cache._used = cache.recompute_used_bytes()
    if cache.used_bytes > capacity_bytes:
        # Shrink to fit with the cache's own eviction policy.
        if not cache._ensure_free(0):
            raise ValueError(
                "snapshot contents cannot be shrunk to the requested capacity"
            )
    return cache
