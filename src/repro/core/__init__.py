"""Marconi's core: the radix-tree prefix cache with judicious admission and
FLOP-aware eviction.

The public entry point is :class:`~repro.core.cache.MarconiCache`; the
supporting pieces (tree, eviction policies, alpha tuner) are exported for
direct use by tests, baselines, and ablation benchmarks.
"""

from repro.core.interfaces import (
    AdmitResult,
    CacheProtocol,
    LookupResult,
    PrefixCache,
    RequestSession,
    SessionState,
)
from repro.core.eviction_index import EvictionIndex
from repro.core.node import RadixNode
from repro.core.radix_tree import InsertOutcome, MatchResult, RadixTree, TreeObserver
from repro.core.admission import SpeculativeInsertReport, speculative_insert
from repro.core.eviction import (
    EvictionCandidate,
    EvictionPolicy,
    FlopAwareEviction,
    GDSEviction,
    GDSFEviction,
    LFUEviction,
    LRUEviction,
    LRUKEviction,
    RandomEviction,
    make_eviction_policy,
)
from repro.core.alpha_tuner import AlphaTuner, AlphaTunerConfig
from repro.core.cache import MarconiCache
from repro.core.persistence import load_cache, load_tree, save_cache
from repro.core.stats import CacheStats

__all__ = [
    "AdmitResult",
    "CacheProtocol",
    "LookupResult",
    "PrefixCache",
    "RequestSession",
    "SessionState",
    "RadixNode",
    "RadixTree",
    "TreeObserver",
    "EvictionIndex",
    "MatchResult",
    "InsertOutcome",
    "SpeculativeInsertReport",
    "speculative_insert",
    "EvictionCandidate",
    "EvictionPolicy",
    "LRUEviction",
    "FlopAwareEviction",
    "GDSEviction",
    "GDSFEviction",
    "LFUEviction",
    "LRUKEviction",
    "RandomEviction",
    "make_eviction_policy",
    "AlphaTuner",
    "AlphaTunerConfig",
    "MarconiCache",
    "CacheStats",
    "save_cache",
    "load_cache",
    "load_tree",
]
