"""Eviction policies: LRU, Marconi's FLOP-aware scoring, and classic comparators.

Eviction candidates are radix nodes with at most one child (section 4.3):
multi-child nodes are shared prefixes and are protected until their subtrees
drain.  Evicting a leaf frees its KVs and checkpoint; evicting a single-child
intermediate node frees only its checkpoint (the child absorbs the KVs), so
candidates that would free zero bytes are filtered out before scoring to
guarantee the eviction loop makes progress.

Beyond the paper's LRU baseline and FLOP-aware contribution, this module
carries the classic web-cache family section 4.2 positions Marconi against:
GDSF (Cherkasova 1998) and plain greedy-dual-size ("GDS", whose 1/size cost
signal is exactly the proxy the paper argues fails for fixed-size SSM
states), plus LFU, LRU-K, and a seeded random floor for ablations.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.node import RadixNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.eviction_index import EvictionIndex


@dataclass(slots=True)
class EvictionCandidate:
    """One evictable node with everything the scoring policies need.

    ``sort_key`` is precomputed at construction: the ``min()`` scans and the
    heap selectors compare it on every step, and candidates are rebuilt by
    the eviction index whenever their inputs change, so the key can never go
    stale.
    """

    node: RadixNode
    freeable_bytes: int
    flop_efficiency: float
    last_access: float
    is_leaf: bool
    sort_key: tuple[float, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Deterministic tie-break: older first, then smaller node id.
        self.sort_key = (self.last_access, self.node.node_id)


class EvictionPolicy(abc.ABC):
    """Chooses which candidate to evict next.

    Two selection surfaces exist:

    * :meth:`select_victim` — score an explicit candidate list (the seed
      API; still used by tests and the legacy full-scan mode).
    * :meth:`select_from_index` — select against a maintained
      :class:`~repro.core.eviction_index.EvictionIndex`.  The base
      implementation scores the index's cached candidate snapshot;
      heap-backed subclasses keep a lazy min-heap synced to the index and
      select in amortized O(log n) without touching the candidate set.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        """Pick the next victim from a non-empty candidate list."""

    def bind_index(self, index: "EvictionIndex") -> None:
        """Attach to ``index``; subscribes heap selectors to its change feed.

        Policies that never overrode :meth:`on_candidate_changed` leave the
        feed unset so the index skips the callback on the refresh hot path.
        """
        if type(self).on_candidate_changed is EvictionPolicy.on_candidate_changed:
            index.on_candidate_changed = None
        else:
            index.on_candidate_changed = self.on_candidate_changed

    def on_candidate_changed(self, candidate: EvictionCandidate) -> None:
        """Called by the bound index when a candidate is added or rebuilt."""

    def begin_eviction_pass(self) -> None:
        """Called at the start of one eviction episode (one ``_ensure_free``)."""

    def select_from_index(self, index: "EvictionIndex") -> EvictionCandidate:
        """Pick the next victim using the maintained candidate index."""
        return self.select_victim(index.candidates())

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        """Hook called after a victim is actually evicted (GDSF's clock)."""

    def notify_access(self, node: RadixNode, now: float) -> None:
        """Hook called on every cache hit (LRU-K's access history)."""

    def reset(self) -> None:
        """Clear any internal state."""


class _LazyHeapPolicy(EvictionPolicy):
    """Heap-backed selection with stale-entry skipping.

    The heap holds ``(key, seq, candidate)`` entries pushed whenever the
    bound index adds or rebuilds a candidate.  An entry is stale when the
    index no longer holds that exact candidate object (the index rebuilds
    candidates on any relevant change, so object identity doubles as a
    version check) or when its key has drifted (LRU-K history, LFU/GDSF hit
    counts — all of which only ever *increase* a key, so re-pushing at the
    corrected key preserves min-heap correctness).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, int, EvictionCandidate]] = []
        self._seq = itertools.count()

    @abc.abstractmethod
    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        """Current selection key; must be non-decreasing over a candidate's
        life (candidates are rebuilt — not mutated — on any other change)."""

    def bind_index(self, index: "EvictionIndex") -> None:
        super().bind_index(index)
        self._heap = []
        for candidate in index.candidates():
            self.on_candidate_changed(candidate)

    def on_candidate_changed(self, candidate: EvictionCandidate) -> None:
        heapq.heappush(
            self._heap, (self._heap_key(candidate), next(self._seq), candidate)
        )

    def select_from_index(self, index: "EvictionIndex") -> EvictionCandidate:
        heap = self._heap
        while heap:
            key, _, candidate = heap[0]
            if index.get(candidate.node.node_id) is not candidate:
                heapq.heappop(heap)  # superseded or evicted: discard
                continue
            fresh = self._heap_key(candidate)
            if fresh != key:
                heapq.heappop(heap)  # key drifted upward: re-rank
                heapq.heappush(heap, (fresh, next(self._seq), candidate))
                continue
            return candidate
        raise ValueError("no eviction candidates")

    def reset(self) -> None:
        self._heap = []


class LRUEviction(_LazyHeapPolicy):
    """Plain least-recently-used eviction — the SGLang+ baseline (policy V1)."""

    name = "lru"

    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        return candidate.sort_key

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: c.sort_key)


class FlopAwareEviction(EvictionPolicy):
    """Marconi's utility score: ``S(n) = recency(n) + alpha * flop_efficiency(n)``.

    Both terms are min-max normalized over the current candidate set to
    (0, 1), matching the paper's "normalized ... by comparing all nodes'
    last-accessed timestamps and FLOP saved/byte in the radix tree".
    ``alpha = 0`` degenerates to LRU; a large ``alpha`` ranks purely by
    compute saved per byte.  ``alpha`` is mutable so the bootstrap tuner can
    adopt the grid-search winner in place.

    Normalization is relative to the *whole* candidate set, so this policy
    cannot be heap-backed without changing semantics.  Instead,
    :meth:`select_from_index` scores the index's maintained candidate
    snapshot and caches the resulting eviction order until the index's dirty
    epoch advances.  ``batch_size`` (K) additionally amortizes the
    normalization: within one eviction pass, up to K victims are taken from
    a single scored order, each re-validated against the index before use.
    ``batch_size = 1`` (the default) renormalizes before every victim and is
    decision-identical to the seed full-rescan implementation.
    """

    name = "flop_aware"

    def __init__(
        self,
        alpha: float = 1.0,
        normalization: str = "rank",
        batch_size: int = 1,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if normalization not in ("rank", "minmax"):
            raise ValueError(f"normalization must be 'rank' or 'minmax', got {normalization!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.alpha = alpha
        self.normalization = normalization
        self.batch_size = batch_size
        self._order: deque[EvictionCandidate] = deque()
        self._order_epoch: Optional[int] = None
        self._order_budget = 0

    def _normalized(self, values: list[float]) -> list[float]:
        if self.normalization == "rank":
            return _rank_normalize(values)
        return [_min_max_normalize(v, values) for v in values]

    def scores(self, candidates: list[EvictionCandidate]) -> list[float]:
        """Utility score of every candidate against the candidate set."""
        recency = self._normalized([c.last_access for c in candidates])
        efficiency = self._normalized([c.flop_efficiency for c in candidates])
        return [r + self.alpha * e for r, e in zip(recency, efficiency)]

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        n = len(candidates)
        if n == 1:
            return candidates[0]
        alpha = self.alpha
        if self.normalization == "rank":
            # Inlined tie-averaged rank scoring: candidate sets under real
            # pressure are tiny (median ~3), so per-call overhead dominates
            # — one flat pass per term, scores accumulated in place, same
            # float expressions as :func:`_rank_normalize` term by term.
            la = [c.last_access for c in candidates]
            scores = [0.0] * n
            order = sorted(range(n), key=la.__getitem__)
            i = 0
            while i < n:
                j = i
                vi = la[order[i]]
                while j + 1 < n and la[order[j + 1]] == vi:
                    j += 1
                r = ((i + j) / 2.0 + 1.0) / n
                for k in range(i, j + 1):
                    scores[order[k]] = r
                i = j + 1
            fe = [c.flop_efficiency for c in candidates]
            order = sorted(range(n), key=fe.__getitem__)
            i = 0
            while i < n:
                j = i
                vi = fe[order[i]]
                while j + 1 < n and fe[order[j + 1]] == vi:
                    j += 1
                ae = alpha * (((i + j) / 2.0 + 1.0) / n)
                for k in range(i, j + 1):
                    ki = order[k]
                    scores[ki] = scores[ki] + ae
                i = j + 1
        else:
            recency = self._normalized([c.last_access for c in candidates])
            efficiency = self._normalized([c.flop_efficiency for c in candidates])
            scores = [r + alpha * e for r, e in zip(recency, efficiency)]
        # Fused min over (score, sort_key); sort_key ties are impossible
        # (node ids are unique), so the order is total.
        best = candidates[0]
        best_score = scores[0]
        best_key = best.sort_key
        for idx in range(1, n):
            score = scores[idx]
            if score < best_score:
                best = candidates[idx]
                best_score = score
                best_key = best.sort_key
            elif score == best_score:
                candidate = candidates[idx]
                if candidate.sort_key < best_key:
                    best = candidate
                    best_score = score
                    best_key = candidate.sort_key
        return best

    def begin_eviction_pass(self) -> None:
        # Never carry a scored order across pressure episodes: requests may
        # have touched/admitted entries in between.
        self._order.clear()
        self._order_epoch = None

    def _rebuild_order(self, index: "EvictionIndex") -> None:
        candidates = index.candidates()
        if not candidates:
            raise ValueError("no eviction candidates")
        scores = self.scores(candidates)
        ranked = sorted(
            range(len(candidates)),
            key=lambda i: (scores[i], candidates[i].sort_key),
        )
        self._order = deque(candidates[i] for i in ranked)
        self._order_epoch = index.epoch
        self._order_budget = self.batch_size

    def select_from_index(self, index: "EvictionIndex") -> EvictionCandidate:
        """Pick the next victim, renormalizing once per ``batch_size`` victims.

        With ``batch_size = 1`` the order is rebuilt whenever the index's
        epoch has advanced — i.e. before every victim under eviction
        pressure — reproducing the seed semantics exactly.  With a larger
        batch, up to K victims are drained from one scored pass; entries
        invalidated by intervening structure changes are skipped via the
        index identity check, so a stale order can delay but never corrupt
        a decision.
        """
        if self.batch_size == 1:
            # Renormalize-per-victim degenerates to one min() over the live
            # candidate snapshot: the first element of the stable sort
            # _rebuild_order would have produced (sort_key makes the order
            # total, so min and sort agree), without building the order.
            return self.select_victim(index.candidates())
        while True:
            if (
                self._order_epoch is None
                or self._order_budget <= 0
                or not self._order
            ):
                self._rebuild_order(index)
            while self._order:
                candidate = self._order.popleft()
                if index.get(candidate.node.node_id) is candidate:
                    self._order_budget -= 1
                    return candidate
            # Scored order fully drained by stale entries; renormalize.

    def reset(self) -> None:
        self._order.clear()
        self._order_epoch = None
        self._order_budget = 0


class GDSFEviction(_LazyHeapPolicy):
    """Greedy-Dual-Size-Frequency (Cherkasova 1998), adapted to cache entries.

    ``H(n) = clock + hit_count * saved_flops / size``.  The paper discusses
    GDSF as the classic size-aware scheme whose size signal fails for SSM
    states; we include it as an ablation comparator.  Since ``saved_flops /
    size`` is exactly FLOP efficiency, the adaptation uses it as the cost
    term, with the standard inflating clock providing aging.

    Ordering omits the clock everywhere: priorities are recomputed against
    the live clock at selection time, so within one selection the clock is a
    constant offset shared by every candidate and cannot change the
    mathematical ordering — but adding a large clock to small cost terms
    *can* absorb their difference in float64 and flatten real distinctions
    into tie-breaks.  Ranking by the clock-free key keeps the list scan and
    the heap selector decision-identical at any clock magnitude.
    """

    name = "gdsf"

    def __init__(self) -> None:
        super().__init__()
        self._clock = 0.0

    def _priority(self, candidate: EvictionCandidate) -> float:
        frequency = max(1, candidate.node.hit_count)
        return self._clock + frequency * candidate.flop_efficiency

    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        frequency = max(1, candidate.node.hit_count)
        return (frequency * candidate.flop_efficiency,) + candidate.sort_key

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=self._heap_key)

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._clock = self._priority(victim)

    def reset(self) -> None:
        super().reset()
        self._clock = 0.0


class LFUEviction(_LazyHeapPolicy):
    """Least-frequently-used: evict the candidate with the fewest hits.

    Frequency alone has the same blind spot as recency for hybrid states —
    a never-hit checkpoint of a 30K-token prefix ties with a never-hit
    16-token leaf — so this serves as an ablation comparator, with recency
    breaking frequency ties.
    """

    name = "lfu"

    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        return (candidate.node.hit_count,) + candidate.sort_key

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (c.node.hit_count, c.sort_key))


class LRUKEviction(_LazyHeapPolicy):
    """LRU-K (O'Neil 1993): evict the oldest K-th most recent access.

    Tracks the last ``k`` access times per node via :meth:`notify_access`.
    Nodes with fewer than ``k`` recorded accesses use ``-inf`` as their
    K-th-access time (classic backward K-distance), so cold one-touch
    entries are evicted before entries with an established reuse history —
    the scan-resistance property LRU lacks.
    """

    name = "lru_k"

    def __init__(self, k: int = 2) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._history: dict[int, deque[float]] = {}

    def notify_access(self, node: RadixNode, now: float) -> None:
        history = self._history.setdefault(node.node_id, deque(maxlen=self.k))
        history.append(now)

    def _kth_access(self, candidate: EvictionCandidate) -> float:
        history = self._history.get(candidate.node.node_id)
        if history is not None and len(history) >= self.k:
            return history[0]
        return float("-inf")

    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        # Access times only move forward, so the key never decreases.
        return (self._kth_access(candidate),) + candidate.sort_key

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (self._kth_access(c), c.sort_key))

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._history.pop(victim.node.node_id, None)

    def reset(self) -> None:
        super().reset()
        self._history.clear()


class GDSEviction(_LazyHeapPolicy):
    """Plain greedy-dual-size with unit cost: ``H(n) = clock + 1 / size``.

    The textbook policy the paper's section 4.2 critique targets directly:
    its only value signal is the entry's byte size, which for a hybrid
    model's fixed-size recurrent checkpoints is unrelated to the compute a
    hit saves.  Included so ablations can quantify how badly the size proxy
    misprices long-prefix checkpoints.

    As with GDSF, the clock is a shared offset at selection time; both the
    list scan and the heap rank by the clock-free key.
    """

    name = "gds"

    def __init__(self) -> None:
        super().__init__()
        self._clock = 0.0

    def _priority(self, candidate: EvictionCandidate) -> float:
        return self._clock + 1.0 / max(1, candidate.freeable_bytes)

    def _heap_key(self, candidate: EvictionCandidate) -> tuple:
        return (1.0 / max(1, candidate.freeable_bytes),) + candidate.sort_key

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=self._heap_key)

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._clock = self._priority(victim)

    def reset(self) -> None:
        super().reset()
        self._clock = 0.0


class RandomEviction(EvictionPolicy):
    """Uniform-random victim selection (seeded); the ablation floor."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return self._rng.choice(candidates)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


def _min_max_normalize(value: float, values: list[float]) -> float:
    """Min-max normalize ``value`` against ``values``; 1.0 when degenerate.

    A degenerate set (all equal) makes the term uninformative; returning a
    constant leaves the ranking to the other term and the tie-break.
    """
    low = min(values)
    high = max(values)
    if high <= low:
        return 1.0
    return (value - low) / (high - low)


def _rank_normalize(values: list[float]) -> list[float]:
    """Average-rank normalization into (0, 1], tie-aware.

    Rank normalization makes the two utility terms scale-free: a node's
    recency score no longer depends on how long the serving process has
    been up, only on how it *compares* to the other candidates — the
    reading of the paper's "normalized ... by comparing all nodes'
    last-accessed timestamps and FLOP saved/byte".
    """
    n = len(values)
    if n == 1:
        return [1.0]
    order = sorted(range(n), key=values.__getitem__)
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        # 1-based average rank for the tie group [i, j].
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg / n
        i = j + 1
    return ranks


_POLICIES = {
    "lru": lambda alpha: LRUEviction(),
    "flop_aware": lambda alpha: FlopAwareEviction(alpha if alpha is not None else 1.0),
    "gdsf": lambda alpha: GDSFEviction(),
    "gds": lambda alpha: GDSEviction(),
    "lfu": lambda alpha: LFUEviction(),
    "lru_k": lambda alpha: LRUKEviction(),
    "random": lambda alpha: RandomEviction(),
}


def make_eviction_policy(name: str, alpha: float | None = None) -> EvictionPolicy:
    """Instantiate an eviction policy by name.

    Known names: ``lru``, ``flop_aware`` (uses ``alpha``), ``gdsf``,
    ``gds``, ``lfu``, ``lru_k``, ``random``.
    """
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
    return factory(alpha)
