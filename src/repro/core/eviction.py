"""Eviction policies: LRU, Marconi's FLOP-aware scoring, and classic comparators.

Eviction candidates are radix nodes with at most one child (section 4.3):
multi-child nodes are shared prefixes and are protected until their subtrees
drain.  Evicting a leaf frees its KVs and checkpoint; evicting a single-child
intermediate node frees only its checkpoint (the child absorbs the KVs), so
candidates that would free zero bytes are filtered out before scoring to
guarantee the eviction loop makes progress.

Beyond the paper's LRU baseline and FLOP-aware contribution, this module
carries the classic web-cache family section 4.2 positions Marconi against:
GDSF (Cherkasova 1998) and plain greedy-dual-size ("GDS", whose 1/size cost
signal is exactly the proxy the paper argues fails for fixed-size SSM
states), plus LFU, LRU-K, and a seeded random floor for ablations.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from dataclasses import dataclass

from repro.core.node import RadixNode


@dataclass
class EvictionCandidate:
    """One evictable node with everything the scoring policies need."""

    node: RadixNode
    freeable_bytes: int
    flop_efficiency: float
    last_access: float
    is_leaf: bool

    @property
    def sort_key(self) -> tuple[float, int]:
        """Deterministic tie-break: older first, then smaller node id."""
        return (self.last_access, self.node.node_id)


class EvictionPolicy(abc.ABC):
    """Chooses which candidate to evict next."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        """Pick the next victim from a non-empty candidate list."""

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        """Hook called after a victim is actually evicted (GDSF's clock)."""

    def notify_access(self, node: RadixNode, now: float) -> None:
        """Hook called on every cache hit (LRU-K's access history)."""

    def reset(self) -> None:
        """Clear any internal state."""


class LRUEviction(EvictionPolicy):
    """Plain least-recently-used eviction — the SGLang+ baseline (policy V1)."""

    name = "lru"

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: c.sort_key)


class FlopAwareEviction(EvictionPolicy):
    """Marconi's utility score: ``S(n) = recency(n) + alpha * flop_efficiency(n)``.

    Both terms are min-max normalized over the current candidate set to
    (0, 1), matching the paper's "normalized ... by comparing all nodes'
    last-accessed timestamps and FLOP saved/byte in the radix tree".
    ``alpha = 0`` degenerates to LRU; a large ``alpha`` ranks purely by
    compute saved per byte.  ``alpha`` is mutable so the bootstrap tuner can
    adopt the grid-search winner in place.
    """

    name = "flop_aware"

    def __init__(self, alpha: float = 1.0, normalization: str = "rank") -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if normalization not in ("rank", "minmax"):
            raise ValueError(f"normalization must be 'rank' or 'minmax', got {normalization!r}")
        self.alpha = alpha
        self.normalization = normalization

    def _normalized(self, values: list[float]) -> list[float]:
        if self.normalization == "rank":
            return _rank_normalize(values)
        return [_min_max_normalize(v, values) for v in values]

    def scores(self, candidates: list[EvictionCandidate]) -> list[float]:
        """Utility score of every candidate against the candidate set."""
        recency = self._normalized([c.last_access for c in candidates])
        efficiency = self._normalized([c.flop_efficiency for c in candidates])
        return [r + self.alpha * e for r, e in zip(recency, efficiency)]

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        scored = zip(self.scores(candidates), (c.sort_key for c in candidates), candidates)
        return min(scored, key=lambda item: (item[0], item[1]))[2]


class GDSFEviction(EvictionPolicy):
    """Greedy-Dual-Size-Frequency (Cherkasova 1998), adapted to cache entries.

    ``H(n) = clock + hit_count * saved_flops / size``.  The paper discusses
    GDSF as the classic size-aware scheme whose size signal fails for SSM
    states; we include it as an ablation comparator.  Since ``saved_flops /
    size`` is exactly FLOP efficiency, the adaptation uses it as the cost
    term, with the standard inflating clock providing aging.
    """

    name = "gdsf"

    def __init__(self) -> None:
        self._clock = 0.0

    def _priority(self, candidate: EvictionCandidate) -> float:
        frequency = max(1, candidate.node.hit_count)
        return self._clock + frequency * candidate.flop_efficiency

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (self._priority(c), c.sort_key))

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._clock = self._priority(victim)

    def reset(self) -> None:
        self._clock = 0.0


class LFUEviction(EvictionPolicy):
    """Least-frequently-used: evict the candidate with the fewest hits.

    Frequency alone has the same blind spot as recency for hybrid states —
    a never-hit checkpoint of a 30K-token prefix ties with a never-hit
    16-token leaf — so this serves as an ablation comparator, with recency
    breaking frequency ties.
    """

    name = "lfu"

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (c.node.hit_count, c.sort_key))


class LRUKEviction(EvictionPolicy):
    """LRU-K (O'Neil 1993): evict the oldest K-th most recent access.

    Tracks the last ``k`` access times per node via :meth:`notify_access`.
    Nodes with fewer than ``k`` recorded accesses use ``-inf`` as their
    K-th-access time (classic backward K-distance), so cold one-touch
    entries are evicted before entries with an established reuse history —
    the scan-resistance property LRU lacks.
    """

    name = "lru_k"

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._history: dict[int, deque[float]] = {}

    def notify_access(self, node: RadixNode, now: float) -> None:
        history = self._history.setdefault(node.node_id, deque(maxlen=self.k))
        history.append(now)

    def _kth_access(self, candidate: EvictionCandidate) -> float:
        history = self._history.get(candidate.node.node_id)
        if history is not None and len(history) >= self.k:
            return history[0]
        return float("-inf")

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (self._kth_access(c), c.sort_key))

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._history.pop(victim.node.node_id, None)

    def reset(self) -> None:
        self._history.clear()


class GDSEviction(EvictionPolicy):
    """Plain greedy-dual-size with unit cost: ``H(n) = clock + 1 / size``.

    The textbook policy the paper's section 4.2 critique targets directly:
    its only value signal is the entry's byte size, which for a hybrid
    model's fixed-size recurrent checkpoints is unrelated to the compute a
    hit saves.  Included so ablations can quantify how badly the size proxy
    misprices long-prefix checkpoints.
    """

    name = "gds"

    def __init__(self) -> None:
        self._clock = 0.0

    def _priority(self, candidate: EvictionCandidate) -> float:
        return self._clock + 1.0 / max(1, candidate.freeable_bytes)

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return min(candidates, key=lambda c: (self._priority(c), c.sort_key))

    def notify_eviction(self, victim: EvictionCandidate) -> None:
        self._clock = self._priority(victim)

    def reset(self) -> None:
        self._clock = 0.0


class RandomEviction(EvictionPolicy):
    """Uniform-random victim selection (seeded); the ablation floor."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        return self._rng.choice(candidates)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


def _min_max_normalize(value: float, values: list[float]) -> float:
    """Min-max normalize ``value`` against ``values``; 1.0 when degenerate.

    A degenerate set (all equal) makes the term uninformative; returning a
    constant leaves the ranking to the other term and the tie-break.
    """
    low = min(values)
    high = max(values)
    if high <= low:
        return 1.0
    return (value - low) / (high - low)


def _rank_normalize(values: list[float]) -> list[float]:
    """Average-rank normalization into (0, 1], tie-aware.

    Rank normalization makes the two utility terms scale-free: a node's
    recency score no longer depends on how long the serving process has
    been up, only on how it *compares* to the other candidates — the
    reading of the paper's "normalized ... by comparing all nodes'
    last-accessed timestamps and FLOP saved/byte".
    """
    n = len(values)
    if n == 1:
        return [1.0]
    order = sorted(range(n), key=values.__getitem__)
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        # 1-based average rank for the tie group [i, j].
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg / n
        i = j + 1
    return ranks


_POLICIES = {
    "lru": lambda alpha: LRUEviction(),
    "flop_aware": lambda alpha: FlopAwareEviction(alpha if alpha is not None else 1.0),
    "gdsf": lambda alpha: GDSFEviction(),
    "gds": lambda alpha: GDSEviction(),
    "lfu": lambda alpha: LFUEviction(),
    "lru_k": lambda alpha: LRUKEviction(),
    "random": lambda alpha: RandomEviction(),
}


def make_eviction_policy(name: str, alpha: float | None = None) -> EvictionPolicy:
    """Instantiate an eviction policy by name.

    Known names: ``lru``, ``flop_aware`` (uses ``alpha``), ``gdsf``,
    ``gds``, ``lfu``, ``lru_k``, ``random``.
    """
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
    return factory(alpha)
