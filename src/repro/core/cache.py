"""`MarconiCache`: the paper's prefix cache (admission + eviction + accounting).

The cache manages KVs and recurrent states *holistically in one radix tree*
(section 4): each node owns the KVs of its edge and, when checkpointed, one
full-model recurrent state.  The serving engine drives the transactional
session protocol of :class:`repro.core.interfaces.PrefixCache`:

``begin`` (prefill start)
    * finds the longest reusable prefix — for hybrid models the deepest
      exactly-matching checkpointed node; for pure Transformers the raw
      common-prefix length,
    * commits the input path into the tree (charging its KV bytes), and
    * when the insertion splits an edge — the speculative-insertion signal
      that a "purely input" shared prefix exists — checkpoints the new
      branch-point node.

``session.commit`` (decode end)
    * extends the path with the generated tokens and checkpoints the state
      of the last decoded token, the resume point of "input + output" reuse.

``session.abort`` (cancellation / failure)
    * releases the lookup-time pin and rolls back whatever the begin-time
      speculative insertion added that no other request has since built on
      (the new edge's KVs, the branch checkpoint, the edge split).

Pinning protects the states of in-flight requests between begin and close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.alpha_tuner import AlphaTuner, AlphaTunerConfig
from repro.core.eviction import (
    EvictionCandidate,
    EvictionPolicy,
    FlopAwareEviction,
    make_eviction_policy,
)
from repro.core.eviction_index import EvictionIndex
from repro.core.interfaces import (
    AdmitResult,
    LookupResult,
    PrefixCache,
    RequestSession,
)
from repro.core.node import RadixNode
from repro.core.radix_tree import RadixTree
from repro.core.stats import CacheStats
from repro.core.tokens import TokenSeq
from repro.models.config import ModelConfig
from repro.models.efficiency import node_flop_efficiency
from repro.models.flops import model_prefill_flops, prefill_flops_table
from repro.models.memory import (
    kv_bytes_per_token,
    model_recurrent_bytes,
    node_state_bytes,
)


class MarconiSession(RequestSession):
    """Marconi's request session: the pin/rollback state machine.

    Carries everything the cache pinned or speculatively inserted at begin
    time, so commit knows what to extend and abort knows what to undo.
    """

    __slots__ = (
        "input_len",
        "end_node",
        "pinned_node",
        "branch_node",
        "new_leaf",
        "split_node",
        "rolled_back",
    )

    def __init__(self, cache: "MarconiCache", input_len: int) -> None:
        super().__init__(cache)
        self.input_len = input_len
        self.end_node: Optional[RadixNode] = None
        self.pinned_node: Optional[RadixNode] = None
        self.branch_node: Optional[RadixNode] = None
        self.new_leaf: Optional[RadixNode] = None
        self.split_node: Optional[RadixNode] = None
        self.rolled_back: bool = False


@dataclass
class MarconiCacheConfig:
    """Tunables for :class:`MarconiCache` beyond model and capacity."""

    eviction: str = "flop_aware"
    alpha: Optional[float] = None  # None => bootstrap auto-tuning
    tuner: AlphaTunerConfig = field(default_factory=AlphaTunerConfig)
    store_states: bool = False
    use_eviction_index: bool = True
    batch_evictions: int = 1


class MarconiCache(PrefixCache):
    """Prefix cache for hybrid (and pure) LLMs with Marconi's policies.

    Parameters
    ----------
    model:
        Architecture whose states are being cached; drives all byte and
        FLOP accounting and the hit semantics (exact-match checkpoints for
        hybrid models, token-granular KV reuse for pure Transformers).
    capacity_bytes:
        Cache budget.
    eviction:
        ``"flop_aware"`` (Marconi), ``"lru"`` (SGLang+ / policy V1), or one
        of the ablation comparators (``"gdsf"``, ``"gds"``, ``"lfu"``,
        ``"lru_k"``, ``"random"``); see
        :func:`repro.core.eviction.make_eviction_policy`.
    alpha:
        Fixed FLOP-efficiency weight.  ``None`` with ``flop_aware`` enables
        the paper's bootstrap tuner: LRU behaviour (``alpha = 0``) until the
        first eviction, a recording window, then a grid-search replay that
        adopts the hit-rate-maximizing alpha.
    store_states:
        When True, checkpoint nodes carry caller-provided model-state
        payloads (used by the executable-model serving layer).
    use_eviction_index:
        When True (the default), eviction candidates come from an
        incrementally maintained :class:`~repro.core.eviction_index
        .EvictionIndex`; when False, every eviction falls back to the seed
        behaviour of a full-tree rescan (kept as the reference
        implementation and for the microbenchmark's baseline).  Both modes
        make identical eviction decisions.
    batch_evictions:
        FLOP-aware batch size K: victims freed per rank-normalization pass
        within one eviction episode.  ``1`` (the default) renormalizes
        before every victim — the paper's exact semantics; larger values
        amortize the O(c·log c) normalization under sustained pressure.
    """

    def __init__(
        self,
        model: ModelConfig,
        capacity_bytes: int,
        *,
        eviction: str = "flop_aware",
        alpha: Optional[float] = None,
        tuner_config: Optional[AlphaTunerConfig] = None,
        store_states: bool = False,
        efficiency_mode: str = "prefix_per_freed",
        use_eviction_index: bool = True,
        batch_evictions: int = 1,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if batch_evictions < 1:
            raise ValueError(f"batch_evictions must be >= 1, got {batch_evictions}")
        self.model = model
        self._capacity = int(capacity_bytes)
        self._eviction_name = eviction
        self._fixed_alpha = alpha
        self.store_states = store_states
        self.efficiency_mode = efficiency_mode
        self._tuner_config = tuner_config or AlphaTunerConfig()
        self._use_index = use_eviction_index
        self._batch_evictions = batch_evictions

        # Per-model byte constants, bound once: the eviction index refreshes
        # candidates on every tree mutation, and each refresh needs both.
        self._kv_per_token = kv_bytes_per_token(model)
        self._recurrent_bytes = model_recurrent_bytes(model)
        self._flops_table = prefill_flops_table(model)

        self._index: Optional[EvictionIndex] = None
        self._scan_node_visits = 0
        self._used = 0
        self._stats = CacheStats()
        self.tuner: Optional[AlphaTuner] = None
        self.policy: EvictionPolicy = self._build_policy()
        self.tree = RadixTree()  # property setter attaches the index

    def _build_policy(self) -> EvictionPolicy:
        if self._eviction_name == "flop_aware" and self._fixed_alpha is None:
            # Auto-tuning mode: behave as LRU (alpha = 0) until tuned.
            self.tuner = AlphaTuner(self._tuner_config)
            policy = FlopAwareEviction(alpha=0.0)
        else:
            self.tuner = None
            policy = make_eviction_policy(self._eviction_name, self._fixed_alpha)
        if isinstance(policy, FlopAwareEviction):
            policy.batch_size = self._batch_evictions
        return policy

    # ------------------------------------------------------------------
    # Tree attachment (keeps the eviction index observing the live tree)
    # ------------------------------------------------------------------
    @property
    def tree(self) -> RadixTree:
        return self._tree

    @tree.setter
    def tree(self, tree: RadixTree) -> None:
        """Adopt ``tree``, rebuilding the eviction index against it.

        Assigning a tree (reset, persistence reload, the tuner's replay
        snapshot) re-seeds the index with its one-and-only full scan and
        re-binds the policy's selector state.
        """
        if self._index is not None:
            self._tree.remove_observer(self._index)
        self._tree = tree
        if self._use_index:
            self._index = EvictionIndex(
                tree, self._freeable_bytes, self._candidate_efficiency
            )
            self.policy.bind_index(self._index)
        else:
            self._index = None
        # External observers (router directories) follow the live tree and
        # resync themselves via their on_tree_attached hook.
        self._reattach_tree_observers(tree)

    @property
    def eviction_index(self) -> Optional[EvictionIndex]:
        """The maintained candidate index (None in legacy full-scan mode)."""
        return self._index

    @property
    def eviction_node_visits(self) -> int:
        """Nodes (re-)evaluated for eviction candidacy so far.

        In index mode this counts incremental candidacy evaluations; in
        legacy mode it counts nodes walked by the per-eviction full scans.
        The microbenchmark compares the two under identical workloads.
        """
        if self._index is not None:
            return self._index.node_visits
        return self._scan_node_visits

    # ------------------------------------------------------------------
    # PrefixCache surface
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def stats(self) -> CacheStats:
        return self._stats

    @property
    def alpha(self) -> float:
        """Current FLOP-efficiency weight (0.0 for LRU/GDSF policies)."""
        if isinstance(self.policy, FlopAwareEviction):
            return self.policy.alpha
        return 0.0

    def reset(self) -> None:
        self.detach_open_sessions()  # outstanding sessions must not touch the new tree
        self._used = 0
        self._stats = CacheStats()
        self._scan_node_visits = 0
        self.policy = self._build_policy()
        self.tree = RadixTree()  # after the policy so the index binds to it

    # ------------------------------------------------------------------
    # Begin (prefill start)
    # ------------------------------------------------------------------
    def _begin_session(self, tokens: np.ndarray, now: float) -> MarconiSession:
        seq = TokenSeq.of(tokens)  # interned handle: cached bytes feed the
        tokens = seq.arr  # tree's full-edge byte-compare fast path
        n = len(tokens)
        if n == 0:
            raise ValueError("cannot look up an empty token sequence")
        tree = self._tree
        has_recurrent = self.model.has_recurrent_layers
        match = tree.match(seq)

        hit_tokens = 0
        reused_bytes = 0
        payload = None
        if has_recurrent:
            # All-or-nothing: the hit must end exactly on a checkpointed node,
            # and at least the final input token must be prefilled to produce
            # the first decode step's logits.
            hit_node = match.deepest_ssm_node(max_seq_len=n - 1)
            if hit_node is not None:
                hit_tokens = hit_node.seq_len
                reused_bytes = hit_tokens * self._kv_per_token + self._recurrent_bytes
                tree.touch(hit_node, now)
                self.policy.notify_access(hit_node, now)
                payload = hit_node.state_payload
        else:
            # Pure Transformer: KVs slice at token granularity.
            hit_tokens = min(match.matched_len, n - 1)
            if hit_tokens > 0:
                reused_bytes = hit_tokens * self._kv_per_token
                if match.path:
                    tree.touch(match.path[-1], now)
                    self.policy.notify_access(match.path[-1], now)

        self._stats.record_lookup(hit_tokens, n)
        self._stats.flops_saved += model_prefill_flops(self.model, hit_tokens)

        # Commit the input path (every system admits all KVs of the sequence;
        # Marconi is judicious only about recurrent checkpoints).  The match
        # above already walked the fully-matched prefix and nothing between
        # match and insert mutates tree structure, so insertion resumes from
        # the deepest fully-matched node instead of re-descending from root.
        outcome = tree.insert(
            seq, now, start=match.path[-1] if match.path else None
        )
        end = outcome.end_node
        tree.refresh_access(end, now)
        tree.pin_path(end)
        session = MarconiSession(self, input_len=n)
        session.end_node = end
        session.pinned_node = end
        session.new_leaf = outcome.new_leaf
        session.split_node = outcome.split_node

        branch = outcome.split_node
        want_branch_checkpoint = (
            has_recurrent and branch is not None and not branch.has_ssm_state
        )
        kv_cost = outcome.new_edge_tokens * self._kv_per_token
        branch_cost = self._recurrent_bytes if want_branch_checkpoint else 0

        if self._ensure_free(kv_cost + branch_cost):
            self._used += kv_cost + branch_cost
            if want_branch_checkpoint:
                assert branch is not None
                tree.set_checkpoint(branch, now)
                session.branch_node = branch
        elif self._ensure_free(kv_cost):
            # Cache pressure: keep the KVs, drop the branch checkpoint.
            self._used += kv_cost
        elif self._charge_partial_leaf(outcome) == 0:
            # Not even a prefix of the input KVs fits (pinned working set
            # exceeds capacity): serve the request without caching its path.
            self._rollback_input_insert(session, outcome)

        checkpoint_positions = (
            [session.branch_node.seq_len] if session.branch_node is not None else []
        )
        session.result = LookupResult(
            hit_tokens=hit_tokens,
            input_tokens=n,
            reused_bytes=reused_bytes,
            checkpoint_positions=checkpoint_positions,
            state_payload=payload,
        )
        return session

    def _charge_partial_leaf(self, outcome) -> int:
        """Truncate the just-inserted leaf to the longest affordable prefix.

        Called after eviction could not make room for the full new edge;
        whatever freeable space remains determines how many of the new
        tokens' KVs are kept.  Returns the bytes charged (0 when nothing
        fits or there is no new leaf to shrink).
        """
        leaf = outcome.new_leaf
        if leaf is None or leaf.parent is None or leaf.has_ssm_state:
            return 0
        per_token = self._kv_per_token
        if per_token <= 0:
            return 0
        affordable = (self._capacity - self._used) // per_token
        if affordable <= 0 or affordable >= leaf.kv_tokens:
            return 0
        self.tree.truncate_leaf(leaf, int(affordable))
        charged = int(affordable) * per_token
        self._used += charged
        return charged

    def _rollback_input_insert(self, session: MarconiSession, outcome) -> None:
        """Undo a just-committed input path that cannot be afforded."""
        assert session.pinned_node is not None
        self.tree.unpin_path(session.pinned_node)
        session.pinned_node = None
        session.end_node = None
        session.rolled_back = True
        if outcome.new_leaf is not None and outcome.new_leaf.parent is not None:
            self.tree.remove_leaf(outcome.new_leaf)
        split = outcome.split_node
        if (
            split is not None
            and split.parent is not None
            and split.n_children == 1
            and not split.has_ssm_state
            and not split.is_pinned
        ):
            # Restore the original un-split edge.
            self.tree.merge_into_child(split)
        session.new_leaf = None
        session.split_node = None
        self._stats.record_admission(0, rejected=True)

    # ------------------------------------------------------------------
    # Commit (decode end)
    # ------------------------------------------------------------------
    def _commit_session(
        self,
        session: Optional[MarconiSession],
        tokens: np.ndarray,
        now: float,
        state_payload: Any = None,
    ) -> AdmitResult:
        seq = TokenSeq.of(tokens)
        tokens = seq.arr
        if len(tokens) == 0:
            raise ValueError("cannot admit an empty token sequence")
        if session is not None:
            if session.rolled_back:
                # The input path was never cached; skip the output too.
                self._finish_request(now, session.input_len, tokens)
                return AdmitResult(rejected=True)
            input_len = session.input_len
        else:
            input_len = len(tokens)

        stats = self._stats
        tree = self._tree
        has_recurrent = self.model.has_recurrent_layers
        evicted_before = stats.evicted_bytes
        # The begin-time end node (if any) is pinned, so it is still attached
        # and its path is a prefix of the full sequence (truncation during a
        # partial begin only shortens it): resume insertion from there.
        begin_end = session.end_node if session is not None else None
        outcome = tree.insert(seq, now, start=begin_end)
        end = outcome.end_node
        # Protect the not-yet-charged extension (and the nodes the upcoming
        # eviction pass must not merge into it) before freeing space.  The
        # begin-time pin, if any, covers the shared ancestor segment, so the
        # walk stops there and the final ``unpin_path(end)`` below releases
        # both pins in one pass — identical counts, never exposed in between.
        begin_pin = session.pinned_node if session is not None else None
        tree.pin_path(end, stop=begin_pin)
        if session is not None:
            session.pinned_node = None
        want_leaf_checkpoint = has_recurrent and not end.has_ssm_state
        kv_cost = outcome.new_edge_tokens * self._kv_per_token
        leaf_cost = self._recurrent_bytes if want_leaf_checkpoint else 0

        rejected = False
        admitted = 0
        if self._ensure_free(kv_cost + leaf_cost):
            self._used += kv_cost + leaf_cost
            admitted = kv_cost + leaf_cost
            if want_leaf_checkpoint:
                tree.set_checkpoint(end)
            tree.refresh_access(end, now)
            if self.store_states and has_recurrent:
                end.state_payload = state_payload
            tree.unpin_path(end)
        elif self._ensure_free(kv_cost):
            # The checkpoint doesn't fit but the KVs do: admit KV-only.
            self._used += kv_cost
            admitted = kv_cost
            tree.refresh_access(end, now)
            tree.unpin_path(end)
        else:
            # Keep the longest affordable KV prefix of the extension (block
            # caches do the same by admitting as many prefix blocks as fit);
            # no checkpoint, since it would represent the untruncated edge.
            admitted = self._charge_partial_leaf(outcome)
            rejected = admitted == 0
            tree.unpin_path(end)
            if rejected and outcome.new_leaf is not None and outcome.new_leaf.parent is not None:
                tree.remove_leaf(outcome.new_leaf)
        stats.record_admission(admitted, rejected=rejected)

        self._finish_request(now, input_len, tokens)
        return AdmitResult(
            admitted_bytes=admitted,
            evicted_bytes=stats.evicted_bytes - evicted_before,
            rejected=rejected,
        )

    # ------------------------------------------------------------------
    # Abort (cancellation / failure)
    # ------------------------------------------------------------------
    def _abort_session(self, session: MarconiSession) -> None:
        """Release the begin-time pin and roll back the speculative insert.

        Rollback is conservative: state this request added is removed only
        when no other request has since built on it — a still-pinned node,
        a leaf that grew children, or a checkpoint that appeared on the new
        edge stays cached (and stays charged; the accounting invariant
        ``used_bytes == recompute_used_bytes()`` holds either way).
        """
        if session.pinned_node is not None:
            self.tree.unpin_path(session.pinned_node)
            session.pinned_node = None
        self._stats.extra["aborted_sessions"] = (
            self._stats.extra.get("aborted_sessions", 0) + 1
        )
        if session.rolled_back:
            return  # begin already rolled everything back

        # Drop the speculative branch checkpoint this request planned.
        branch = session.branch_node
        if (
            branch is not None
            and branch.parent is not None
            and branch.has_ssm_state
            and not branch.is_pinned
        ):
            self.tree.clear_checkpoint(branch)
            self._used -= self._recurrent_bytes
            session.branch_node = None

        # Remove the new edge's KVs unless another path grew through it.
        leaf = session.new_leaf
        if (
            leaf is not None
            and leaf.parent is not None
            and leaf.is_leaf
            and not leaf.is_pinned
            and not leaf.has_ssm_state
        ):
            self._used -= leaf.kv_tokens * self._kv_per_token
            self.tree.remove_leaf(leaf)
            session.new_leaf = None

        # Restore the original un-split edge when the split served only us.
        split = session.split_node
        if (
            split is not None
            and split.parent is not None
            and split.n_children == 1
            and not split.has_ssm_state
            and not split.is_pinned
        ):
            self.tree.merge_into_child(split)
            session.split_node = None

    def _attach_session(
        self, session: MarconiSession, position: int, payload: Any
    ) -> None:
        node = session.branch_node
        if node is None or node.seq_len != position:
            raise ValueError(f"no pending branch checkpoint at position {position}")
        if self.store_states:
            node.state_payload = payload

    def attach_branch_state(self, handle: Any, position: int, payload: Any) -> None:
        """Deprecated: use :meth:`RequestSession.attach_branch_state`.

        Only meaningful with ``store_states=True``; the engine calls this
        after checkpointing the state at ``position`` during prefill.
        """
        if not isinstance(handle, RequestSession):
            raise TypeError("handle must come from lookup()")
        if handle.cache is not self:
            raise TypeError("handle came from a different cache instance")
        handle.attach_branch_state(position, payload)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _node_bytes(self, node: RadixNode) -> int:
        return node_state_bytes(self.model, node.kv_tokens, node.has_ssm_state)

    def _freeable_bytes(self, node: RadixNode) -> int:
        if not node.children:  # leaf: the full entry (KVs + checkpoint) goes
            kv = len(node.edge_tokens) * self._kv_per_token
            return kv + self._recurrent_bytes if node.has_ssm_state else kv
        # Single-child intermediate node: only the checkpoint is released;
        # its KVs are absorbed by the child.
        if node.has_ssm_state:
            return self._recurrent_bytes
        return 0

    def _candidate_efficiency(self, node: RadixNode, freeable: int) -> float:
        # Inlined node_flop_efficiency "prefix_per_freed" hot path: probe the
        # shared prefill-FLOPs memo directly (same floats — the memo stores
        # the value model_prefill_flops would return) and skip two frames.
        if self.efficiency_mode == "prefix_per_freed":
            if freeable <= 0:
                return 0.0
            seq_len = node.seq_len
            saved = self._flops_table.get(seq_len)
            if saved is None:
                saved = model_prefill_flops(self.model, seq_len)
            return saved / freeable
        return node_flop_efficiency(
            self.model,
            node.seq_len,
            node.parent_seq_len,
            freeable,
            mode=self.efficiency_mode,
        )

    def _collect_candidates(self, count_visits: bool = False) -> list[EvictionCandidate]:
        """Full-tree candidate rebuild (the legacy path and the reference
        implementation the index's property tests compare against)."""
        candidates = []
        for node in self.tree.iter_nodes():
            if count_visits:
                self._scan_node_visits += 1
            if node.is_pinned or node.n_children > 1:
                continue
            freeable = self._freeable_bytes(node)
            if freeable <= 0:
                continue
            candidates.append(
                EvictionCandidate(
                    node=node,
                    freeable_bytes=freeable,
                    flop_efficiency=self._candidate_efficiency(node, freeable),
                    last_access=node.last_access,
                    is_leaf=node.is_leaf,
                )
            )
        return candidates

    def _select_victim(self) -> Optional[EvictionCandidate]:
        """Next victim under the configured selection mode; None when the
        evictable set is empty."""
        if self._index is not None:
            if len(self._index) == 0:
                return None
            return self.policy.select_from_index(self._index)
        candidates = self._collect_candidates(count_visits=True)
        if not candidates:
            return None
        return self.policy.select_victim(candidates)

    def _ensure_free(self, needed_bytes: int) -> bool:
        """Evict until ``needed_bytes`` fit; False if that proves impossible.

        The loop body is the inlined equivalent of ``_select_victim`` +
        ``_apply_eviction`` (kept as standalone methods for tests and
        external callers) with per-iteration attribute lookups hoisted —
        this is the hottest loop in the simulator under cache pressure.
        Subclasses that override ``_apply_eviction`` (e.g. tiered
        demotion) still get their hook: the inline body only runs when
        the method is the base-class one.
        """
        capacity = self._capacity
        if needed_bytes > capacity:
            return False
        if capacity - self._used >= needed_bytes:
            return True
        policy = self.policy
        policy.begin_eviction_pass()
        index = self._index
        tree = self._tree
        stats = self._stats
        tuner = self.tuner
        inline_apply = type(self)._apply_eviction is MarconiCache._apply_eviction
        while capacity - self._used < needed_bytes:
            if index is not None:
                if not index.candidates():
                    return False
                victim = policy.select_from_index(index)
            else:
                candidates = self._collect_candidates(count_visits=True)
                if not candidates:
                    return False
                victim = policy.select_victim(candidates)
            if inline_apply:
                node = victim.node
                freed = victim.freeable_bytes
                if not node.children:
                    tree.remove_leaf(node)
                else:
                    tree.clear_checkpoint(node)
                    tree.merge_into_child(node)
                self._used -= freed
                stats.record_eviction(freed)
            else:
                self._apply_eviction(victim)
            policy.notify_eviction(victim)
            if tuner is not None:
                tuner.note_eviction()
        return True

    def _apply_eviction(self, victim: EvictionCandidate) -> None:
        node = victim.node
        freed = victim.freeable_bytes
        if node.is_leaf:
            self.tree.remove_leaf(node)
        else:
            self.tree.clear_checkpoint(node)
            self.tree.merge_into_child(node)
        self._used -= freed
        self._stats.record_eviction(freed)

    # ------------------------------------------------------------------
    # Alpha tuning plumbing
    # ------------------------------------------------------------------
    def _finish_request(
        self, now: float, input_len: int, full_tokens: np.ndarray
    ) -> None:
        if self.tuner is None:
            return
        self.tuner.after_request(self, now, input_len, full_tokens)

    def snapshot_for_replay(self) -> RadixTree:
        """Structural snapshot the tuner replays the bootstrap window against."""
        return self.tree.clone()

    def make_replay_cache(self, alpha: float, snapshot: RadixTree) -> "MarconiCache":
        """A throwaway cache seeded from ``snapshot`` with a fixed alpha.

        The replica inherits the eviction-index mode (and FLOP-aware batch
        size), so the tuner's grid-search replay pays incremental — not
        full-rescan — eviction costs per alpha; assigning the cloned tree
        re-seeds the replica's index in one scan.
        """
        replica = MarconiCache(
            self.model,
            self._capacity,
            eviction="flop_aware",
            alpha=alpha,
            store_states=False,
            efficiency_mode=self.efficiency_mode,
            use_eviction_index=self._use_index,
            batch_evictions=self._batch_evictions,
        )
        replica.tree = snapshot.clone()
        replica._used = sum(
            replica._node_bytes(node) for node in replica.tree.iter_nodes()
        )
        return replica

    def set_alpha(self, alpha: float) -> None:
        """Adopt a (tuned) alpha; only valid for the flop-aware policy."""
        if not isinstance(self.policy, FlopAwareEviction):
            raise ValueError(f"policy {self.policy.name!r} has no alpha to set")
        self.policy.alpha = alpha

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    def recompute_used_bytes(self) -> int:
        """Re-derive occupancy from the tree (the accounting invariant)."""
        return sum(self._node_bytes(node) for node in self.tree.iter_nodes())
