"""Judicious admission: the speculative-insertion step (paper section 4.1).

Marconi's admission policy checkpoints recurrent states only where the
prefix-reuse taxonomy predicts reuse:

* **Purely-input prefixes** (system prompts, few-shot examples, shared
  instructions) appear as *branch points*: if speculatively inserting an
  upcoming request's input into the radix tree would create a new
  intermediate node — i.e. the input shares a proper prefix with a
  previously observed sequence — that shared prefix is hot and its state is
  worth checkpointing during the upcoming prefill.
* **Input-and-output prefixes** (conversation histories, agent
  trajectories) resume from the *last decoded token*, so the state after
  the final decoding step is checkpointed for every sequence.

This module provides the non-mutating speculative check; the cache performs
the actual insertion (which reports the same branch point) when it commits
the input path at prefill time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.radix_tree import RadixTree, common_prefix_length


@dataclass(frozen=True)
class SpeculativeInsertReport:
    """What inserting a candidate input sequence would do to the tree.

    Attributes
    ----------
    would_split_edge:
        True when insertion creates a new intermediate node — the signal
        that a "purely input" shared prefix exists and should be
        checkpointed.
    branch_position:
        Prefix length (token count) of the would-be intermediate node;
        ``None`` when no split would occur.
    matched_len:
        Raw common-prefix length between the input and the tree.
    """

    would_split_edge: bool
    branch_position: Optional[int]
    matched_len: int


def speculative_insert(tree: RadixTree, tokens: np.ndarray) -> SpeculativeInsertReport:
    """Dry-run an insertion of ``tokens`` and report any would-be branch point.

    Mirrors :meth:`repro.core.radix_tree.RadixTree.insert` exactly but never
    mutates the tree.  At most one edge split can result from inserting a
    single sequence, so at most one branch position is reported.
    """
    node = tree.root
    pos = 0
    while pos < len(tokens):
        child = node.child_for(tokens[pos])
        if child is None:
            # Fresh suffix under an existing node: adds a leaf, no split.
            return SpeculativeInsertReport(
                would_split_edge=False, branch_position=None, matched_len=pos
            )
        shared = common_prefix_length(child.edge_tokens, tokens[pos:])
        pos += shared
        if shared < len(child.edge_tokens):
            # Insertion would split this edge after `shared` tokens, either
            # because the input diverges mid-edge or because it ends there.
            return SpeculativeInsertReport(
                would_split_edge=True, branch_position=pos, matched_len=pos
            )
        node = child
    # Input is exactly a node boundary path: nothing new would be created.
    return SpeculativeInsertReport(
        would_split_edge=False, branch_position=None, matched_len=pos
    )
