"""Token-level radix tree over request histories (paper section 4.1).

The tree is the bookkeeping structure behind Marconi's admission policy:
edges are labeled with token arrays of arbitrary length, nodes mark
branch-off points and sequence ends, and each node owns the KVs of its edge
plus (optionally) one recurrent checkpoint for its full prefix.

The tree itself is purely structural — byte accounting and policy decisions
live in :mod:`repro.core.cache` so that the same tree serves Marconi,
SGLang+, and the ablation variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.core.node import RadixNode
from repro.core.tokens import TokenSeq

_INT32 = np.dtype(np.int32)


def _query_parts(tokens) -> tuple:
    """``(array, bytes-or-None)`` view of a query sequence.

    Interned :class:`TokenSeq` handles supply their cached bytes; canonical
    int32 arrays are serialized once per call.  Anything else (lists, other
    dtypes) gets no bytes view and walks the tree via elementwise
    comparison, exactly as before the fast path existed.
    """
    if isinstance(tokens, TokenSeq):
        return tokens.arr, tokens.tobytes()
    if isinstance(tokens, np.ndarray) and tokens.ndim == 1 and tokens.dtype == _INT32:
        return tokens, tokens.tobytes()
    return tokens, None


class TreeObserver:
    """Callback surface fired by :class:`RadixTree` as structure changes.

    Observers power incremental bookkeeping (the eviction index) without the
    tree knowing anything about byte accounting or policies.  The contract,
    per callback (see ``docs/architecture.md`` for the full protocol):

    * ``on_node_added(node)`` — a new leaf was linked under ``node.parent``.
      Fired after linking; the parent's child count has already changed.
    * ``on_edge_split(middle, child)`` — an edge was split: ``middle`` is the
      new intermediate node now owning the edge's head, ``child`` kept the
      tail (its ``edge_tokens`` shrank; its path and ``seq_len`` are
      unchanged).  ``middle`` inherited ``child``'s pin count.
    * ``on_leaf_removed(node, parent)`` — ``node`` was detached from
      ``parent``; ``parent``'s child count has already decreased.
    * ``on_merged(node, child)`` — single-child ``node`` was removed and
      ``child`` absorbed its edge tokens (``child.kv_tokens`` grew;
      ``child.seq_len`` is unchanged).
    * ``on_leaf_truncated(node)`` — a leaf's edge (and ``seq_len``) shrank.
    * ``on_checkpoint_changed(node)`` — ``has_ssm_state`` was toggled.
    * ``on_pin_changed(node)`` — ``pin_count`` changed (fired per node on
      every :meth:`RadixTree.pin_path` / :meth:`RadixTree.unpin_path` hop).
    * ``on_touched(node)`` — ``last_access`` (and possibly ``hit_count``)
      was refreshed.

    All callbacks fire *after* the mutation is complete, so observers may
    inspect the tree's new state but must not mutate it re-entrantly.
    """

    def on_node_added(self, node: RadixNode) -> None: ...

    def on_edge_split(self, middle: RadixNode, child: RadixNode) -> None: ...

    def on_leaf_removed(self, node: RadixNode, parent: RadixNode) -> None: ...

    def on_merged(self, node: RadixNode, child: RadixNode) -> None: ...

    def on_leaf_truncated(self, node: RadixNode) -> None: ...

    def on_checkpoint_changed(self, node: RadixNode) -> None: ...

    def on_pin_changed(self, node: RadixNode) -> None: ...

    def on_touched(self, node: RadixNode) -> None: ...


def common_prefix_length(a: np.ndarray, b: np.ndarray) -> int:
    """Length of the longest common prefix of two int token arrays."""
    limit = min(len(a), len(b))
    if limit == 0:
        return 0
    mismatch = a[:limit] != b[:limit]
    first = int(np.argmax(mismatch))
    if mismatch[first]:
        return first
    return limit


@dataclass(slots=True)
class MatchResult:
    """Result of walking ``tokens`` down the tree without mutating it.

    Attributes
    ----------
    matched_len:
        Raw common-prefix length between the query and the tree's contents
        (may end mid-edge).  This is the KV-reusable length for pure
        Transformers.
    path:
        Fully matched non-root nodes in root→deepest order.  Candidate
        recurrent-state hits are the nodes in this list with
        ``has_ssm_state`` — an SSM hit must end exactly on a node (the
        "all or nothing" property of section 3).
    """

    matched_len: int
    path: list[RadixNode] = field(default_factory=list)

    @property
    def deepest_node(self) -> Optional[RadixNode]:
        return self.path[-1] if self.path else None

    def deepest_ssm_node(self, max_seq_len: int) -> Optional[RadixNode]:
        """Deepest matched checkpoint usable for a prefix of ``max_seq_len``."""
        for node in reversed(self.path):
            if node.has_ssm_state and node.seq_len <= max_seq_len:
                return node
        return None


@dataclass(slots=True)
class InsertOutcome:
    """Result of inserting a token sequence.

    Attributes
    ----------
    end_node:
        The node whose path equals the inserted sequence.
    new_leaf:
        Leaf created for the non-shared suffix (``None`` when the sequence
        was already fully present or ends exactly at a split point).
    split_node:
        Intermediate node created by splitting an existing edge (``None``
        when no split occurred).  At most one split can happen per insert.
        Split nodes are exactly the "purely input" branch points the
        admission policy checkpoints.
    new_edge_tokens:
        Number of tokens added to the tree as fresh edge material (the KV
        bytes the cache must charge).  Splits redistribute tokens and add 0.
    """

    end_node: RadixNode
    new_leaf: Optional[RadixNode] = None
    split_node: Optional[RadixNode] = None
    new_edge_tokens: int = 0

    @property
    def created_intermediate_node(self) -> bool:
        return self.split_node is not None


class RadixTree:
    """A radix tree keyed by int32 token sequences."""

    def __init__(self) -> None:
        self.root = RadixNode(np.empty(0, dtype=np.int32), parent=None, now=0.0)
        self._observers: list[TreeObserver] = []

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: TreeObserver) -> None:
        """Register ``observer`` for all future structure-change callbacks."""
        self._observers.append(observer)

    def remove_observer(self, observer: TreeObserver) -> None:
        """Unregister ``observer``; no-op if it was never registered."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def match(self, tokens: np.ndarray) -> MatchResult:
        """Walk ``tokens`` down the tree; never mutates.

        Full-edge coverage — by far the common case on a walk — is tested
        with one memcmp of the query's bytes against the node's cached edge
        bytes; only a divergence (or a query ending mid-edge) falls back to
        the elementwise :func:`common_prefix_length`.
        """
        tokens, qbytes = _query_parts(tokens)
        node = self.root
        matched = 0
        n = len(tokens)
        path: list[RadixNode] = []
        while matched < n:
            child = node.children.get(int(tokens[matched]))
            if child is None:
                break
            edge = child.edge_tokens
            edge_len = len(edge)
            end = matched + edge_len
            if qbytes is not None and end <= n:
                edge_bytes = child._edge_bytes
                if edge_bytes is None and edge.dtype == _INT32:
                    edge_bytes = child._edge_bytes = edge.tobytes()
                if (
                    edge_bytes is not None
                    and qbytes[matched * 4 : end * 4] == edge_bytes
                ):
                    matched = end
                    node = child
                    path.append(child)
                    continue
            shared = common_prefix_length(edge, tokens[matched:])
            matched += shared
            if shared < edge_len:
                # Diverged (or query exhausted) mid-edge: KVs up to `matched`
                # are reusable but no node boundary was reached.
                break
            node = child
            path.append(child)
        return MatchResult(matched_len=matched, path=path)

    def insert(
        self,
        tokens: np.ndarray,
        now: float,
        start: Optional[RadixNode] = None,
    ) -> InsertOutcome:
        """Insert ``tokens`` as a root path, splitting edges as needed.

        ``start`` is a walk-resume hint: a node the caller *guarantees* is
        attached and whose path equals ``tokens[:start.seq_len]`` (e.g. the
        deepest fully-matched node of a just-completed :meth:`match`, or a
        still-pinned end node whose sequence ``tokens`` extends).  The walk
        then skips straight to it — the root walk would deterministically
        descend to the same node, so the outcome is identical.
        """
        tokens, qbytes = _query_parts(tokens)
        if start is not None and start.parent is not None:
            node = start
            pos = start.seq_len
        else:
            node = self.root
            pos = 0
        n = len(tokens)
        split_node: Optional[RadixNode] = None
        new_leaf: Optional[RadixNode] = None
        new_edge_tokens = 0
        # Interned queries (qbytes cached => canonical write-protected array)
        # can donate a zero-copy view as the new leaf's edge; a plain mutable
        # array from an external caller is copied so the tree owns its edges.
        tail = (lambda p: tokens[p:]) if qbytes is not None else (lambda p: tokens[p:].copy())
        while pos < n:
            child = node.children.get(int(tokens[pos]))
            if child is None:
                new_leaf = RadixNode(tail(pos), parent=node, now=now)
                node.children[new_leaf.first_token] = new_leaf
                new_edge_tokens += len(new_leaf.edge_tokens)
                node = new_leaf
                pos = n
                for obs in self._observers:
                    obs.on_node_added(new_leaf)
                break
            edge = child.edge_tokens
            end = pos + len(edge)
            if qbytes is not None and end <= n:
                # Same memcmp fast path as match(): descend on full coverage.
                edge_bytes = child._edge_bytes
                if edge_bytes is None and edge.dtype == _INT32:
                    edge_bytes = child._edge_bytes = edge.tobytes()
                if edge_bytes is not None and qbytes[pos * 4 : end * 4] == edge_bytes:
                    node = child
                    pos = end
                    continue
            shared = common_prefix_length(edge, tokens[pos:])
            if shared == len(edge):
                node = child
                pos += shared
                continue
            # Partial match within `child`'s edge: split it at `shared`.
            split_node = self._split_edge(child, shared, now)
            node = split_node
            pos += shared
            if pos < len(tokens):
                new_leaf = RadixNode(tail(pos), parent=node, now=now)
                node.children[new_leaf.first_token] = new_leaf
                new_edge_tokens += len(new_leaf.edge_tokens)
                node = new_leaf
                pos = len(tokens)
                for obs in self._observers:
                    obs.on_node_added(new_leaf)
            break
        return InsertOutcome(
            end_node=node,
            new_leaf=new_leaf,
            split_node=split_node,
            new_edge_tokens=new_edge_tokens,
        )

    def _split_edge(self, child: RadixNode, at: int, now: float) -> RadixNode:
        """Split ``child``'s incoming edge after ``at`` tokens.

        Creates and returns the new intermediate node.  The child keeps its
        states (its path is unchanged); the intermediate node starts with no
        recurrent checkpoint — the admission policy decides whether to add
        one.  KV ownership is redistributed, not created.
        """
        if not 0 < at < len(child.edge_tokens):
            raise ValueError(
                f"split position {at} out of range for edge of length {len(child.edge_tokens)}"
            )
        parent = child.parent
        assert parent is not None, "cannot split the root's (empty) edge"
        # Views, not copies: edge arrays are never mutated in place (every
        # edit assigns a fresh array), so both halves can alias the buffer.
        middle = RadixNode(child.edge_tokens[:at], parent=parent, now=now)
        # A pinned descendant pins every node on its path; the new middle
        # node sits on child's path so it inherits child's pin count.
        middle.pin_count = child.pin_count
        parent.children[middle.first_token] = middle
        child.edge_tokens = child.edge_tokens[at:]
        child._edge_bytes = None
        child.parent = middle
        middle.children[child.first_token] = child
        for obs in self._observers:
            obs.on_edge_split(middle, child)
        return middle

    # ------------------------------------------------------------------
    # Eviction mechanics (section 4.3)
    # ------------------------------------------------------------------
    def remove_leaf(self, node: RadixNode) -> None:
        """Detach a leaf node, dropping its KVs and checkpoint."""
        if node.is_root:
            raise ValueError("cannot remove the root")
        if not node.is_leaf:
            raise ValueError(f"node {node.node_id} is not a leaf")
        if node.is_pinned:
            raise ValueError(f"node {node.node_id} is pinned by an in-flight request")
        assert node.parent is not None
        parent = node.parent
        del parent.children[node.first_token]
        node.parent = None
        for obs in self._observers:
            obs.on_leaf_removed(node, parent)

    def merge_into_child(self, node: RadixNode) -> RadixNode:
        """Remove a single-child node; the child absorbs its edge KVs.

        Returns the absorbing child.  This is the paper's eviction of an
        intermediate node: "its SSM states are released, and its KVs are
        absorbed by its child node".
        """
        if node.is_root:
            raise ValueError("cannot merge the root")
        if node.n_children != 1:
            raise ValueError(f"node {node.node_id} has {node.n_children} children; need exactly 1")
        if node.is_pinned:
            raise ValueError(f"node {node.node_id} is pinned by an in-flight request")
        (child,) = node.children.values()
        parent = node.parent
        assert parent is not None
        first = node.first_token
        child.edge_tokens = np.concatenate([node.edge_tokens, child.edge_tokens])
        child._edge_bytes = None
        child.parent = parent
        parent.children[first] = child
        node.parent = None
        node.children.clear()
        for obs in self._observers:
            obs.on_merged(node, child)
        return child

    def truncate_leaf(self, node: RadixNode, keep_tokens: int) -> None:
        """Shorten a leaf's edge to its first ``keep_tokens`` tokens.

        Used when a new sequence's tail does not fit in the cache: the
        longest affordable prefix is kept (KVs are sliceable on the sequence
        dimension), mirroring how block caches admit as many prefix blocks
        as fit.  Only valid on leaves without a recurrent checkpoint — a
        checkpoint represents the *full* edge and cannot be shortened.
        """
        if not node.is_leaf:
            raise ValueError(f"node {node.node_id} is not a leaf")
        if node.has_ssm_state:
            raise ValueError("cannot truncate a checkpointed leaf")
        if not 0 < keep_tokens < len(node.edge_tokens):
            raise ValueError(
                f"keep_tokens must be in (0, {len(node.edge_tokens)}), got {keep_tokens}"
            )
        node.edge_tokens = node.edge_tokens[:keep_tokens]
        node._edge_bytes = None
        node.seq_len = node.parent_seq_len + keep_tokens
        for obs in self._observers:
            obs.on_leaf_truncated(node)

    # ------------------------------------------------------------------
    # Node state (checkpoint / recency) — routed through the tree so the
    # observer surface sees every change that affects eviction bookkeeping.
    # ------------------------------------------------------------------
    def set_checkpoint(self, node: RadixNode, now: Optional[float] = None) -> None:
        """Mark ``node`` as holding a full-model recurrent checkpoint."""
        node.has_ssm_state = True
        if now is not None:
            node.last_access = now
        for obs in self._observers:
            obs.on_checkpoint_changed(node)

    def clear_checkpoint(self, node: RadixNode) -> None:
        """Release ``node``'s recurrent checkpoint (and any state payload)."""
        node.has_ssm_state = False
        node.state_payload = None
        for obs in self._observers:
            obs.on_checkpoint_changed(node)

    def touch(self, node: RadixNode, now: float) -> None:
        """Refresh ``node``'s recency after a hit (bumps its hit count)."""
        node.touch(now)
        for obs in self._observers:
            obs.on_touched(node)

    def refresh_access(self, node: RadixNode, now: float) -> None:
        """Refresh ``node``'s recency without counting a hit (admissions)."""
        node.last_access = now
        for obs in self._observers:
            obs.on_touched(node)

    # ------------------------------------------------------------------
    # Pinning (in-flight request protection)
    # ------------------------------------------------------------------
    def pin_path(self, node: RadixNode, stop: Optional[RadixNode] = None) -> None:
        """Pin every node from ``node`` up to (not including) the root.

        ``stop`` bounds the walk: pinning stops *before* ``stop`` (which
        must be an ancestor of ``node``).  Callers use it to transfer a pin
        from a still-pinned ancestor path to a longer path — the shared
        segment would receive +1 then −1 with no observable state in
        between, so skipping it is identical and saves the double walk.
        """
        observers = self._observers
        cursor: Optional[RadixNode] = node
        while cursor is not None and cursor is not stop and cursor.parent is not None:
            cursor.pin_count += 1
            for obs in observers:
                obs.on_pin_changed(cursor)
            cursor = cursor.parent

    def unpin_path(self, node: RadixNode) -> None:
        """Release a pin taken with :meth:`pin_path`."""
        observers = self._observers
        cursor: Optional[RadixNode] = node
        while cursor is not None and cursor.parent is not None:
            if cursor.pin_count <= 0:
                raise ValueError(f"unbalanced unpin at node {cursor.node_id}")
            cursor.pin_count -= 1
            for obs in observers:
                obs.on_pin_changed(cursor)
            cursor = cursor.parent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_nodes(self, include_root: bool = False) -> Iterator[RadixNode]:
        """Iterate all nodes (pre-order)."""
        for node in self.root.iter_subtree():
            if node.is_root and not include_root:
                continue
            yield node

    @property
    def n_nodes(self) -> int:
        """Number of non-root nodes."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def total_edge_tokens(self) -> int:
        """Total tokens stored on edges (== KV tokens owned tree-wide)."""
        return sum(node.kv_tokens for node in self.iter_nodes())

    def clone(self) -> "RadixTree":
        """Deep structural copy (for the alpha tuner's snapshot + replay).

        Node statistics (timestamps, checkpoints, hit counts) are preserved;
        pins and state payloads are not — a replayed world has no in-flight
        requests.
        """
        copy = RadixTree()
        copy.root.last_access = self.root.last_access

        def _copy_children(src: RadixNode, dst: RadixNode) -> None:
            for first, child in src.children.items():
                mirrored = RadixNode(child.edge_tokens, parent=dst, now=child.created_at)
                mirrored.has_ssm_state = child.has_ssm_state
                mirrored.last_access = child.last_access
                mirrored.hit_count = child.hit_count
                dst.children[first] = mirrored
                _copy_children(child, mirrored)

        _copy_children(self.root, copy.root)
        return copy

    def check_integrity(self) -> None:
        """Raise ``AssertionError`` on any structural inconsistency (tests)."""
        for node in self.iter_nodes(include_root=True):
            if node.is_root:
                assert node.seq_len == 0 and len(node.edge_tokens) == 0
            else:
                assert len(node.edge_tokens) > 0, "non-root node with empty edge"
                assert node.parent is not None
                assert node.seq_len == node.parent.seq_len + len(node.edge_tokens)
                assert node.parent.children.get(node.first_token) is node
            first_tokens = [int(c.edge_tokens[0]) for c in node.children.values()]
            assert len(first_tokens) == len(set(first_tokens)), "duplicate child first-token"
            for key, child in node.children.items():
                assert key == int(child.edge_tokens[0])
                assert child.parent is node
