"""Aggregate counters every cache implementation maintains."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Running totals for one cache instance.

    ``token hit rate`` — the paper's headline metric — is
    ``hit_tokens / input_tokens`` over all lookups (the ratio of tokens that
    skipped prefill to total input tokens).
    """

    lookups: int = 0
    hits: int = 0
    hit_tokens: int = 0
    input_tokens: int = 0
    admissions: int = 0
    admitted_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    rejected_admissions: int = 0
    flops_saved: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def token_hit_rate(self) -> float:
        """Fraction of all input tokens served from cache (0 when idle)."""
        if self.input_tokens == 0:
            return 0.0
        return self.hit_tokens / self.input_tokens

    @property
    def request_hit_rate(self) -> float:
        """Fraction of lookups with a non-empty hit."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def record_lookup(self, hit_tokens: int, input_tokens: int) -> None:
        """Account one lookup and its (possibly zero-token) hit."""
        self.lookups += 1
        self.input_tokens += input_tokens
        self.hit_tokens += hit_tokens
        if hit_tokens > 0:
            self.hits += 1

    def record_admission(self, admitted_bytes: int, rejected: bool = False) -> None:
        """Account one admission (or an admission the cache rejected)."""
        if rejected:
            self.rejected_admissions += 1
            return
        self.admissions += 1
        self.admitted_bytes += admitted_bytes

    def record_eviction(self, evicted_bytes: int, entries: int = 1) -> None:
        """Account ``entries`` evictions totalling ``evicted_bytes``."""
        self.evictions += entries
        self.evicted_bytes += evicted_bytes

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "hit_tokens": self.hit_tokens,
            "input_tokens": self.input_tokens,
            "token_hit_rate": self.token_hit_rate,
            "request_hit_rate": self.request_hit_rate,
            "admissions": self.admissions,
            "admitted_bytes": self.admitted_bytes,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "rejected_admissions": self.rejected_admissions,
            "flops_saved": self.flops_saved,
        }
