"""Common cache interfaces shared by Marconi and the baselines.

Every policy implements the two-phase protocol the serving engine drives:

1. :meth:`PrefixCache.lookup` at prefill start — returns how many input
   tokens can skip prefill and performs any prefill-time bookkeeping the
   policy requires (Marconi inserts the input path and plans branch-point
   checkpoints here).
2. :meth:`PrefixCache.admit` at decode end — hands the full sequence
   (input + generated output) to the cache for admission.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.stats import CacheStats


@dataclass
class LookupResult:
    """Outcome of a prefill-time cache lookup.

    Attributes
    ----------
    hit_tokens:
        Number of leading input tokens whose prefill is skipped.
    input_tokens:
        Total number of input tokens in the request.
    reused_bytes:
        Bytes of cached state fetched to serve the hit (drives the fetch
        term of the latency model).
    reused_secondary_bytes:
        Of ``reused_bytes``, the portion fetched from a second-tier store
        (zero for single-tier caches); priced at the latency model's
        slower secondary bandwidth.
    handle:
        Opaque policy-specific handle that must be passed back to
        :meth:`PrefixCache.admit` for the same request.
    checkpoint_positions:
        Prefix lengths (in tokens) at which the policy asks the engine to
        materialize recurrent states during this prefill (Marconi's
        speculative-insertion branch points).  Empty for baselines.
    state_payload:
        When the cache stores real model states (``store_states=True``),
        the payload checkpointed at the hit position; otherwise ``None``.
    """

    hit_tokens: int
    input_tokens: int
    reused_bytes: int = 0
    reused_secondary_bytes: int = 0
    handle: Any = None
    checkpoint_positions: list[int] = field(default_factory=list)
    state_payload: Any = None

    @property
    def hit_rate(self) -> float:
        """Fraction of this request's input tokens served from cache."""
        if self.input_tokens == 0:
            return 0.0
        return self.hit_tokens / self.input_tokens

    @property
    def is_hit(self) -> bool:
        return self.hit_tokens > 0


@dataclass
class AdmitResult:
    """Outcome of admitting a finished sequence into the cache."""

    admitted_bytes: int = 0
    evicted_bytes: int = 0
    evicted_entries: int = 0
    rejected: bool = False


class PrefixCache(abc.ABC):
    """Abstract prefix cache driven by the serving engine."""

    @abc.abstractmethod
    def lookup(self, tokens: np.ndarray, now: float) -> LookupResult:
        """Find the longest reusable prefix of ``tokens`` at time ``now``."""

    @abc.abstractmethod
    def admit(
        self,
        tokens: np.ndarray,
        now: float,
        handle: Any = None,
        state_payload: Any = None,
    ) -> AdmitResult:
        """Admit a finished sequence (input + output tokens) at time ``now``."""

    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""

    @property
    @abc.abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently occupied by cached states."""

    @property
    @abc.abstractmethod
    def stats(self) -> CacheStats:
        """Aggregate counters for this cache instance."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all cached state and zero the counters."""

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        """Capacity currently unoccupied."""
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


def as_token_array(tokens: Any) -> np.ndarray:
    """Coerce ``tokens`` (sequence of ints or ndarray) to a 1-D int32 array.

    All caches operate on int32 token IDs; accepting lists keeps the public
    API ergonomic for examples and tests.
    """
    arr = np.asarray(tokens, dtype=np.int32)
    if arr.ndim != 1:
        raise ValueError(f"token sequence must be 1-D, got shape {arr.shape}")
    return arr
