"""Common cache interfaces shared by Marconi and the baselines.

The cache surface is transactional: every request opens a
:class:`RequestSession` against the cache and closes it exactly once.

1. :meth:`PrefixCache.begin` at prefill start — performs the lookup
   (how many input tokens can skip prefill) plus any prefill-time
   bookkeeping the policy requires (Marconi inserts the input path, pins
   it, and plans branch-point checkpoints here) and returns the open
   session.
2. :meth:`RequestSession.commit` at decode end — hands the full sequence
   (input + generated output) to the cache for admission and closes the
   session.
3. :meth:`RequestSession.abort` on cancellation/failure — releases the
   lookup-time pins and rolls back the speculative input insertion, so a
   request that never finishes cannot leak pinned state.

Sessions are context managers: ``with cache.begin(tokens, now) as s: ...``
aborts automatically unless the body committed.  The legacy two-phase
methods :meth:`PrefixCache.lookup` / :meth:`PrefixCache.admit` remain as
thin deprecated shims implemented on top of sessions (the ``handle`` they
thread *is* the session).
"""

from __future__ import annotations

import abc
import enum
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.stats import CacheStats
from repro.core.tokens import canonical_token_array

#: A time source: every cache/serving timestamp comes from one of these.
#: Offline replays inject the simulation kernel's virtual clock; the live
#: gateway injects ``time.monotonic``; components that only need *ordering*
#: (not durations) default to :func:`monotonic_counter`.
Clock = Callable[[], float]


def monotonic_counter(start: float = 0.0, step: float = 1.0) -> Clock:
    """A fake :data:`Clock` that ticks ``step`` on every call.

    Timestamps only order cache accesses (recency, eviction ranks), so a
    counter is a valid clock wherever real durations are not observed.
    The returned callable is self-contained state — two counters never
    interfere — which makes it a safe per-instance default.
    """
    state = {"now": float(start)}

    def tick() -> float:
        state["now"] += step
        return state["now"]

    return tick


@dataclass(slots=True)
class LookupResult:
    """Outcome of a prefill-time cache lookup.

    Attributes
    ----------
    hit_tokens:
        Number of leading input tokens whose prefill is skipped.
    input_tokens:
        Total number of input tokens in the request.
    reused_bytes:
        Bytes of cached state fetched to serve the hit (drives the fetch
        term of the latency model).
    reused_secondary_bytes:
        Of ``reused_bytes``, the portion fetched from a second-tier store
        (zero for single-tier caches); priced at the latency model's
        slower secondary bandwidth.
    handle:
        The request's :class:`RequestSession` when the lookup came through
        the legacy :meth:`PrefixCache.lookup` shim (pass it back to
        :meth:`PrefixCache.admit`); ``None`` on the session API, where the
        session itself is the handle.
    checkpoint_positions:
        Prefix lengths (in tokens) at which the policy asks the engine to
        materialize recurrent states during this prefill (Marconi's
        speculative-insertion branch points).  Empty for baselines.
    state_payload:
        When the cache stores real model states (``store_states=True``),
        the payload checkpointed at the hit position; otherwise ``None``.
    """

    hit_tokens: int
    input_tokens: int
    reused_bytes: int = 0
    reused_secondary_bytes: int = 0
    handle: Any = None
    checkpoint_positions: list[int] = field(default_factory=list)
    state_payload: Any = None

    @property
    def hit_rate(self) -> float:
        """Fraction of this request's input tokens served from cache."""
        if self.input_tokens == 0:
            return 0.0
        return self.hit_tokens / self.input_tokens

    @property
    def is_hit(self) -> bool:
        return self.hit_tokens > 0


@dataclass(slots=True)
class AdmitResult:
    """Outcome of admitting a finished sequence into the cache."""

    admitted_bytes: int = 0
    evicted_bytes: int = 0
    evicted_entries: int = 0
    rejected: bool = False


class SessionState(enum.Enum):
    """Lifecycle of a :class:`RequestSession`.

    ``OPEN`` → ``COMMITTED`` (decode finished, sequence admitted) or
    ``ABORTED`` (request cancelled/failed, lookup-time state rolled back).
    ``DETACHED`` marks sessions orphaned by :meth:`PrefixCache.reset`:
    their cache-side state no longer exists, so both closing verbs become
    inert (committing raises, aborting is a no-op).
    """

    OPEN = "open"
    COMMITTED = "committed"
    ABORTED = "aborted"
    DETACHED = "detached"


class RequestSession:
    """One request's transactional window against a :class:`PrefixCache`.

    Created by :meth:`PrefixCache.begin`; closed exactly once by
    :meth:`commit` or :meth:`abort`.  The session exposes the lookup
    outcome (``hit_tokens``, ``reused_bytes``, ``checkpoint_positions``,
    ...) and owns whatever per-request state the cache pinned at begin
    time — subclasses add policy-specific fields (Marconi keeps the pinned
    path and speculative-insert bookkeeping here).

    Leak safety: sessions are context managers (``__exit__`` aborts if the
    body did not commit) and garbage collection of a still-open session
    aborts it as a last resort, so dropped sessions cannot pin cache state
    forever.  The GC net is disarmed on sessions handed out through the
    legacy :meth:`PrefixCache.lookup` shim, which must preserve the old
    drop-the-handle behaviour bit for bit.
    """

    __slots__ = (
        "_cache",
        "result",
        "_state",
        "_gc_abort",
        "admit_result",
        "__weakref__",  # caches track live sessions in a WeakSet
    )

    def __init__(self, cache: "PrefixCache", result: Optional[LookupResult] = None):
        self._cache = cache
        self.result = result
        self._state = SessionState.OPEN
        self._gc_abort = True
        self.admit_result: Optional[AdmitResult] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def cache(self) -> "PrefixCache":
        return self._cache

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def is_open(self) -> bool:
        return self._state is SessionState.OPEN

    @property
    def is_committed(self) -> bool:
        return self._state is SessionState.COMMITTED

    @property
    def is_aborted(self) -> bool:
        return self._state is SessionState.ABORTED

    # ------------------------------------------------------------------
    # Lookup-outcome views
    # ------------------------------------------------------------------
    @property
    def hit_tokens(self) -> int:
        return self.result.hit_tokens

    @property
    def input_tokens(self) -> int:
        return self.result.input_tokens

    @property
    def reused_bytes(self) -> int:
        return self.result.reused_bytes

    @property
    def reused_secondary_bytes(self) -> int:
        return self.result.reused_secondary_bytes

    @property
    def checkpoint_positions(self) -> list[int]:
        return self.result.checkpoint_positions

    @property
    def state_payload(self) -> Any:
        return self.result.state_payload

    @property
    def hit_rate(self) -> float:
        return self.result.hit_rate

    @property
    def is_hit(self) -> bool:
        return self.result.is_hit

    # ------------------------------------------------------------------
    # Lifecycle verbs
    # ------------------------------------------------------------------
    def attach_branch_state(self, position: int, payload: Any) -> None:
        """Attach a materialized model state to this request's branch
        checkpoint at ``position`` (only meaningful while open)."""
        if self._state is not SessionState.OPEN:
            raise ValueError(
                f"cannot attach state to a {self._state.value} session"
            )
        self._cache._attach_session(self, position, payload)

    def commit(
        self, full_tokens: np.ndarray, now: float, state_payload: Any = None
    ) -> AdmitResult:
        """Admit the finished sequence (input + output) and close the session."""
        if self._state is SessionState.COMMITTED:
            raise ValueError("session was already admitted (commit runs once)")
        if self._state is SessionState.ABORTED:
            raise ValueError("cannot commit an aborted session")
        if self._state is SessionState.DETACHED:
            raise ValueError("cannot commit a session detached by cache.reset()")
        cache = self._cache
        cache._mutating = True
        try:
            result = cache._commit_session(self, full_tokens, now, state_payload)
        finally:
            cache._mutating = False
            cache._drain_deferred_aborts()
        self._state = SessionState.COMMITTED
        self.admit_result = result
        cache._session_closed(self)
        return result

    def abort(self) -> None:
        """Release lookup-time pins and roll back the speculative input
        insertion.  Idempotent; a no-op on already-closed sessions."""
        if self._state is not SessionState.OPEN:
            return
        cache = self._cache
        cache._mutating = True
        try:
            cache._abort_session(self)
        finally:
            cache._mutating = False
            cache._drain_deferred_aborts()
        self._state = SessionState.ABORTED
        cache._session_closed(self)

    def _detach(self) -> None:
        """Orphan the session (cache.reset() dropped its state wholesale)."""
        if self._state is SessionState.OPEN:
            self._state = SessionState.DETACHED

    # ------------------------------------------------------------------
    # Context manager + GC safety net
    # ------------------------------------------------------------------
    def __enter__(self) -> "RequestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state is SessionState.OPEN:
            self.abort()
        return False

    def __del__(self) -> None:
        try:
            if self._state is SessionState.OPEN and self._gc_abort:
                self._cache._on_session_gc(self)
        except Exception:  # pragma: no cover - interpreter-teardown guard
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self._state.value} "
            f"hit={self.result.hit_tokens if self.result else '?'}>"
        )


class PrefixCache(abc.ABC):
    """Abstract prefix cache driven by the serving engine.

    Concrete caches implement the session hooks (``_begin_session``,
    ``_commit_session`` and, when they pin state between the phases,
    ``_abort_session``); the public surface — :meth:`begin`,
    :meth:`begin_many`, and the deprecated :meth:`lookup`/:meth:`admit`
    shims — is shared and final.
    """

    # Class-level defaults so subclasses need no cooperative __init__.
    _open_sessions: int = 0
    _live_sessions: Optional["weakref.WeakSet[RequestSession]"] = None
    _mutating: bool = False  # True while a cache operation is in progress
    _draining: bool = False  # reentrancy guard for the deferred-abort drain
    _deferred_aborts: Optional[list["RequestSession"]] = None
    _external_tree_observers: Optional[list[Any]] = None

    # ------------------------------------------------------------------
    # Tree-observer export hooks (router directories, external indexes)
    # ------------------------------------------------------------------
    def add_tree_observer(self, observer: Any) -> bool:
        """Attach an external observer to this cache's radix tree.

        Returns True when the cache exposes an observable tree; False for
        tree-less caches (block stores), whose callers must fall back to
        probing.  Registered observers survive tree replacement: any code
        path that swaps in a new tree (``reset()``, persistence reload)
        must route through :meth:`_reattach_tree_observers`, which re-adds
        every registered observer and notifies it via its optional
        ``on_tree_attached(tree)`` callback so it can resynchronize.
        """
        tree = getattr(self, "tree", None)
        add = getattr(tree, "add_observer", None)
        if add is None:
            return False
        if self._external_tree_observers is None:
            self._external_tree_observers = []
        self._external_tree_observers.append(observer)
        add(observer)
        return True

    def remove_tree_observer(self, observer: Any) -> None:
        """Detach an observer registered with :meth:`add_tree_observer`."""
        if self._external_tree_observers is not None:
            try:
                self._external_tree_observers.remove(observer)
            except ValueError:
                pass
        tree = getattr(self, "tree", None)
        remove = getattr(tree, "remove_observer", None)
        if remove is not None:
            remove(observer)

    def _reattach_tree_observers(self, tree: Any) -> None:
        """Re-bind registered external observers to a replacement tree."""
        if not self._external_tree_observers:
            return
        for observer in self._external_tree_observers:
            tree.add_observer(observer)
            hook = getattr(observer, "on_tree_attached", None)
            if hook is not None:
                hook(tree)

    # ------------------------------------------------------------------
    # Session hooks (per-policy)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _begin_session(self, tokens: np.ndarray, now: float) -> RequestSession:
        """Perform the prefill-time lookup/bookkeeping; return the open
        session with its :class:`LookupResult` attached."""

    @abc.abstractmethod
    def _commit_session(
        self,
        session: Optional[RequestSession],
        tokens: np.ndarray,
        now: float,
        state_payload: Any = None,
    ) -> AdmitResult:
        """Admit a finished sequence.  ``session`` is ``None`` for a
        detached admission (the legacy ``admit`` without a handle)."""

    def _abort_session(self, session: RequestSession) -> None:
        """Release per-request state pinned at begin time.  Default no-op:
        baselines pin nothing between the two phases."""

    def _begin_many_sessions(
        self, token_seqs: Sequence[np.ndarray], now: float
    ) -> list[RequestSession]:
        """Batch-begin hook behind :meth:`begin_many` (the simulation
        kernel's scheduler-step entry point).

        The default opens the sessions sequentially through :meth:`begin`
        with all-or-nothing semantics: if any begin fails, the sessions
        already opened are aborted before the error propagates, so a bad
        request cannot leak its batchmates' pins.  Caches that can serve a
        whole scheduler step in one pass (shared tree traversals, batched
        pin bookkeeping) may override this hook, but must preserve both
        the per-sequence ordering and the all-or-nothing contract.
        """
        sessions: list[RequestSession] = []
        try:
            for tokens in token_seqs:
                sessions.append(self.begin(tokens, now))
        except BaseException:
            for session in sessions:
                session.abort()
            raise
        return sessions

    def _attach_session(
        self, session: RequestSession, position: int, payload: Any
    ) -> None:
        """Attach a materialized branch-checkpoint state.  Caches without
        branch checkpoints reject every position."""
        raise ValueError(f"no pending branch checkpoint at position {position}")

    # ------------------------------------------------------------------
    # Transactional surface
    # ------------------------------------------------------------------
    def begin(self, tokens: np.ndarray, now: float) -> RequestSession:
        """Open a request session: lookup + prefill-time bookkeeping."""
        self._mutating = True
        try:
            session = self._begin_session(tokens, now)
        finally:
            self._mutating = False
            self._drain_deferred_aborts()
        self._register_session(session)
        return session

    def begin_many(
        self, token_seqs: Sequence[np.ndarray], now: float
    ) -> list[RequestSession]:
        """Open one session per input sequence, in order, at time ``now``.

        Batch entry point for the simulation kernel's scheduler steps: the
        engine starts every request admitted in one step through a single
        call.  The batch is all-or-nothing: if any begin fails, the
        sessions already opened are aborted before the error propagates,
        so a bad request cannot leak its batchmates' pins.  Dispatches to
        the overridable :meth:`_begin_many_sessions` hook.
        """
        return self._begin_many_sessions(token_seqs, now)

    @property
    def open_sessions(self) -> int:
        """Sessions begun and not yet committed/aborted (in-flight requests)."""
        return self._open_sessions

    def _register_session(self, session: RequestSession) -> None:
        if self._live_sessions is None:
            self._live_sessions = weakref.WeakSet()
        self._live_sessions.add(session)
        self._open_sessions += 1

    def _session_closed(self, session: RequestSession) -> None:
        self._open_sessions = max(0, self._open_sessions - 1)
        if self._live_sessions is not None:
            self._live_sessions.discard(session)

    def _on_session_gc(self, session: RequestSession) -> None:
        """GC safety net for a dropped open session.

        Aborting performs structural rollback, which must not reenter a
        cache operation already on the stack (the cyclic GC can fire during
        any allocation, including mid-``insert``).  When the cache is
        quiescent the abort runs inline; otherwise the session is
        resurrected onto a deferred list drained at the next begin/commit.
        """
        if self._mutating:
            if self._deferred_aborts is None:
                self._deferred_aborts = []
            self._deferred_aborts.append(session)
        else:
            session.abort()

    def _drain_deferred_aborts(self) -> None:
        """Abort sessions parked by :meth:`_on_session_gc`.

        Runs at the end of every cache operation (the only windows in
        which deferral can happen), so stale pins cannot outlive the
        operation whose GC pause parked them.  Guarded against reentry:
        the drain's own aborts drain nothing recursively.
        """
        if self._draining:
            return
        self._draining = True
        try:
            while self._deferred_aborts:
                self._deferred_aborts.pop().abort()
        finally:
            self._draining = False

    def detach_open_sessions(self) -> None:
        """Orphan every open session (the close-on-reset safety net).

        Called by ``reset()`` implementations: the cache state the sessions
        pinned is being dropped wholesale, so aborting them against the new
        state would corrupt accounting — instead they become inert.
        """
        if self._live_sessions is not None:
            for session in list(self._live_sessions):
                session._detach()
            self._live_sessions.clear()
        if self._deferred_aborts:
            for session in self._deferred_aborts:
                session._detach()
            self._deferred_aborts.clear()
        self._open_sessions = 0

    # ------------------------------------------------------------------
    # Deprecated two-phase shims (implemented on top of sessions)
    # ------------------------------------------------------------------
    def lookup(self, tokens: np.ndarray, now: float) -> LookupResult:
        """Deprecated: use :meth:`begin`.

        Thin shim over the session API: opens a session and returns its
        :class:`LookupResult` with ``handle`` set to the session.  The GC
        abort net is disarmed so dropping the result without admitting
        behaves exactly as the legacy API did (state stays pinned until
        ``reset()``); new code should use sessions and get leak safety.
        """
        session = self.begin(tokens, now)
        session._gc_abort = False
        result = session.result
        result.handle = session
        return result

    def admit(
        self,
        tokens: np.ndarray,
        now: float,
        handle: Any = None,
        state_payload: Any = None,
    ) -> AdmitResult:
        """Deprecated: use :meth:`RequestSession.commit`.

        Thin shim over the session API: commits the session carried by
        ``handle``, or performs a detached admission when ``handle`` is
        ``None``.  One intentional departure from the legacy contract:
        admitting a handle whose cache was ``reset()`` in between raises
        (the session is detached) instead of silently re-admitting into
        the rebuilt cache against a stale handle.
        """
        if handle is None:
            self._mutating = True
            try:
                return self._commit_session(None, tokens, now, state_payload)
            finally:
                self._mutating = False
                self._drain_deferred_aborts()
        if not isinstance(handle, RequestSession):
            raise TypeError(f"handle must come from lookup(), got {type(handle)!r}")
        if handle.cache is not self:
            raise TypeError("handle came from a different cache instance")
        return handle.commit(tokens, now, state_payload=state_payload)

    # ------------------------------------------------------------------
    # Capacity / accounting surface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""

    @property
    @abc.abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently occupied by cached states."""

    @property
    @abc.abstractmethod
    def stats(self) -> CacheStats:
        """Aggregate counters for this cache instance."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all cached state and zero the counters.

        Implementations must also call :meth:`detach_open_sessions` so
        outstanding sessions cannot mutate the rebuilt state.
        """

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        """Capacity currently unoccupied."""
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


@runtime_checkable
class CacheProtocol(Protocol):
    """Structural type the serving engines require of any cache.

    The one runtime-checkable source of truth (re-exported by
    :mod:`repro.baselines.base` for backwards compatibility): the session
    API plus the deprecated two-phase shims and capacity accounting.
    """

    def begin(self, tokens: np.ndarray, now: float) -> RequestSession: ...

    def begin_many(
        self, token_seqs: Sequence[np.ndarray], now: float
    ) -> list[RequestSession]: ...

    def lookup(self, tokens: np.ndarray, now: float) -> LookupResult: ...

    def admit(
        self,
        tokens: np.ndarray,
        now: float,
        handle: Any = None,
        state_payload: Any = None,
    ) -> AdmitResult: ...

    @property
    def open_sessions(self) -> int: ...

    @property
    def capacity_bytes(self) -> int: ...

    @property
    def used_bytes(self) -> int: ...


def as_token_array(tokens: Any) -> np.ndarray:
    """Coerce ``tokens`` (ints, ndarray, or ``TokenSeq``) to a 1-D int32 array.

    All caches operate on int32 token IDs; accepting lists keeps the public
    API ergonomic for examples and tests.  Interned
    :class:`~repro.core.tokens.TokenSeq` handles unwrap to their canonical
    array, and already-canonical arrays pass through without copying.
    """
    return canonical_token_array(tokens)
