"""Radix-tree node: one edge's tokens plus the model states they map to.

Following the paper's Fig. 4, we associate states with *nodes*: a node owns
the KVs of the tokens on its incoming edge (``edge_tokens``) and, when it is
a checkpoint, one full-model recurrent (SSM + conv) state representing *all*
tokens from the root through the end of its edge.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

import numpy as np

_node_ids = itertools.count(1)


class RadixNode:
    """A node in the prefix radix tree.

    Attributes
    ----------
    edge_tokens:
        Tokens on the edge from ``parent`` to this node (empty for the root).
        The node owns the KVs of exactly these tokens; absorption on eviction
        concatenates a removed parent's edge into its child's, so KV byte
        accounting follows ``len(edge_tokens)`` at all times.
    seq_len:
        Total number of tokens on the root→node path (the prefix length this
        node represents).
    has_ssm_state:
        True when a full-model recurrent checkpoint for this prefix is cached.
    last_access:
        Timestamp of the most recent hit on (or creation of) this node.
        Per section 4.3, hits refresh only the accessed node, not ancestors.
    pin_count:
        Number of in-flight requests whose path runs through this node;
        pinned nodes are never evicted or merged.
    state_payload:
        Optional real model state (used when the cache stores executable
        NumPy model states for exact-reuse serving); ``None`` in pure
        simulation mode.
    """

    __slots__ = (
        "node_id",
        "edge_tokens",
        "parent",
        "children",
        "seq_len",
        "has_ssm_state",
        "last_access",
        "created_at",
        "hit_count",
        "pin_count",
        "state_payload",
        "_edge_bytes",
    )

    def __init__(
        self,
        edge_tokens: np.ndarray,
        parent: Optional["RadixNode"],
        now: float,
    ) -> None:
        self.node_id: int = next(_node_ids)
        self.edge_tokens: np.ndarray = edge_tokens
        self.parent: Optional[RadixNode] = parent
        self.children: dict[int, RadixNode] = {}
        parent_len = parent.seq_len if parent is not None else 0
        self.seq_len: int = parent_len + len(edge_tokens)
        self.has_ssm_state: bool = False
        self.last_access: float = now
        self.created_at: float = now
        self.hit_count: int = 0
        self.pin_count: int = 0
        self.state_payload: Any = None
        # Lazy raw-bytes view of ``edge_tokens`` for the match/insert byte
        # fast path; the tree resets it whenever it reassigns the edge.
        self._edge_bytes: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def n_children(self) -> int:
        return len(self.children)

    @property
    def kv_tokens(self) -> int:
        """Number of tokens whose KVs this node owns (its edge length)."""
        return len(self.edge_tokens)

    @property
    def parent_seq_len(self) -> int:
        """Prefix length at the parent (0 for the root itself)."""
        return self.parent.seq_len if self.parent is not None else 0

    @property
    def is_pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def is_eviction_shaped(self) -> bool:
        """Structural eviction candidacy (section 4.3): attached, unpinned,
        and with at most one child.  Whether the node would actually free
        bytes is byte accounting, which lives in the cache/index layer."""
        return (
            self.parent is not None
            and self.pin_count == 0
            and len(self.children) <= 1
        )

    @property
    def first_token(self) -> int:
        """First token of the incoming edge (the child-map key in the parent)."""
        if len(self.edge_tokens) == 0:
            raise ValueError("root node has no incoming edge")
        return int(self.edge_tokens[0])

    def child_for(self, token: int) -> Optional["RadixNode"]:
        """Child whose edge starts with ``token``, if any."""
        return self.children.get(int(token))

    def edge_bytes(self) -> bytes:
        """Raw int32 bytes of ``edge_tokens``, computed once per edge value.

        Full-edge matches in :meth:`RadixTree.match`/``insert`` compare one
        cached bytes object against a slice of the query's bytes — a single
        C memcmp — instead of an elementwise numpy comparison per edge.
        """
        data = self._edge_bytes
        if data is None:
            data = self._edge_bytes = self.edge_tokens.tobytes()
        return data

    def path_tokens(self) -> np.ndarray:
        """Full root→node token sequence (rebuilt; for tests and debugging)."""
        parts: list[np.ndarray] = []
        node: Optional[RadixNode] = self
        while node is not None and not node.is_root:
            parts.append(node.edge_tokens)
            node = node.parent
        if not parts:
            return np.empty(0, dtype=np.int32)
        return np.concatenate(parts[::-1])

    def iter_subtree(self) -> Iterator["RadixNode"]:
        """Yield this node and all descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def touch(self, now: float) -> None:
        """Refresh the recency timestamp after a hit."""
        self.last_access = now
        self.hit_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadixNode(id={self.node_id}, seq_len={self.seq_len}, "
            f"edge={len(self.edge_tokens)} tokens, ssm={self.has_ssm_state}, "
            f"children={len(self.children)})"
        )
