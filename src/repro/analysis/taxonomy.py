"""Offline reuse-taxonomy analysis of a trace (paper section 4.1).

Marconi's admission policy rests on a two-class taxonomy of prefix reuse:

* **purely input** — the reused prefix appeared in a *previous request's
  input* (system prompts, few-shot examples, shared documents);
* **input + output** — the reused prefix contains a previous request's
  *output* tokens too (conversation history, agent trajectories).

This analyzer measures, for every request of a trace, how many of its input
tokens fall into each class assuming an unbounded cache — i.e. the reuse
*opportunity* a caching policy is competing for, independent of capacity.
It doubles as a workload-characterization tool: traces dominated by the
purely-input class reward branch-point checkpoints, traces dominated by
input + output reward last-token checkpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.radix_tree import RadixTree
from repro.metrics.reporting import ascii_table
from repro.workloads.trace import Trace


class ReuseClass(str, enum.Enum):
    """Dominant reuse class of one request."""

    NONE = "none"
    PURELY_INPUT = "purely_input"
    INPUT_OUTPUT = "input_output"


@dataclass(frozen=True)
class RequestReuse:
    """Reuse opportunity of a single request.

    ``purely_input`` counts leading tokens shared with some earlier
    request's *input*; ``input_output`` counts the additional leading
    tokens reachable only through an earlier request's full (input +
    output) sequence.  The two spans are disjoint and contiguous:
    ``purely_input + input_output <= input_len``.
    """

    session_id: int
    round_index: int
    input_len: int
    purely_input: int
    input_output: int

    @property
    def total_reusable(self) -> int:
        return self.purely_input + self.input_output

    @property
    def fresh(self) -> int:
        """Input tokens that no earlier request can supply."""
        return self.input_len - self.total_reusable

    @property
    def reuse_class(self) -> ReuseClass:
        if self.input_output > 0:
            return ReuseClass.INPUT_OUTPUT
        if self.purely_input > 0:
            return ReuseClass.PURELY_INPUT
        return ReuseClass.NONE


@dataclass
class TaxonomyReport:
    """Aggregate reuse-opportunity statistics for one trace."""

    trace_name: str
    requests: list[RequestReuse] = field(default_factory=list)
    branch_splits: int = 0

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def input_tokens(self) -> int:
        return sum(r.input_len for r in self.requests)

    @property
    def purely_input_tokens(self) -> int:
        return sum(r.purely_input for r in self.requests)

    @property
    def input_output_tokens(self) -> int:
        return sum(r.input_output for r in self.requests)

    @property
    def fresh_tokens(self) -> int:
        return sum(r.fresh for r in self.requests)

    @property
    def reusable_token_share(self) -> float:
        """Upper bound on any cache's token hit rate for this trace."""
        if self.input_tokens == 0:
            return 0.0
        return (self.purely_input_tokens + self.input_output_tokens) / self.input_tokens

    def class_counts(self) -> dict[ReuseClass, int]:
        """Number of requests whose dominant reuse falls in each class."""
        counts = {cls: 0 for cls in ReuseClass}
        for request in self.requests:
            counts[request.reuse_class] += 1
        return counts

    def summary_table(self) -> str:
        """Human-readable per-class share breakdown."""
        total = max(1, self.input_tokens)
        counts = self.class_counts()
        rows = [
            ["purely_input", str(counts[ReuseClass.PURELY_INPUT]),
             str(self.purely_input_tokens), f"{self.purely_input_tokens / total:.1%}"],
            ["input_output", str(counts[ReuseClass.INPUT_OUTPUT]),
             str(self.input_output_tokens), f"{self.input_output_tokens / total:.1%}"],
            ["none (fresh)", str(counts[ReuseClass.NONE]),
             str(self.fresh_tokens), f"{self.fresh_tokens / total:.1%}"],
        ]
        return ascii_table(
            ["class", "requests", "tokens", "token share"], rows,
        )


def classify_trace(trace: Trace) -> TaxonomyReport:
    """Classify every request's reuse opportunity under an unbounded cache.

    Requests are processed in nominal order.  Two radix trees accumulate
    history: one over *inputs only* (defines the purely-input span) and one
    over *full sequences* (defines the total reusable span; whatever it
    matches beyond the input-only span must traverse output tokens).  The
    split count on the full tree is also reported — it is the frequency at
    which Marconi's speculative insertion would fire for this trace.
    """
    inputs_tree = RadixTree()
    full_tree = RadixTree()
    report = TaxonomyReport(trace_name=trace.name)

    for now, session_id, round_index, input_tokens, full_tokens in (
        trace.iter_requests_nominal()
    ):
        # A prefix hit must leave at least the final input token to prefill.
        usable = len(input_tokens) - 1
        purely = min(inputs_tree.match(input_tokens).matched_len, usable)
        total = min(full_tree.match(input_tokens).matched_len, usable)
        report.requests.append(
            RequestReuse(
                session_id=session_id,
                round_index=round_index,
                input_len=len(input_tokens),
                purely_input=purely,
                input_output=max(0, total - purely),
            )
        )
        outcome = inputs_tree.insert(input_tokens, now)
        if outcome.created_intermediate_node:
            report.branch_splits += 1
        full_tree.insert(full_tokens, now)

    return report
