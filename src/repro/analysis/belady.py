"""Clairvoyant (Belady-style) eviction replay: an offline upper-bound yardstick.

Belady's MIN evicts the entry whose next use lies farthest in the future and
is optimal for unit-size, unit-cost caches.  Hybrid-model cache entries have
neither unit size nor unit cost, so farthest-next-use is a *heuristic* upper
bound here, not a provable optimum — but it is exactly the right yardstick
for the paper's online policies: it knows which checkpoints will actually be
reused, so any gap between an online policy and this replay is attributable
to prediction, not mechanics.

The replay drives a regular :class:`repro.core.cache.MarconiCache` (same
admission, same tree mechanics) with the eviction policy swapped for
:class:`ClairvoyantEviction`, which scans the yet-unserved request schedule
for the next request whose input extends each candidate node's prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.eviction import EvictionCandidate, EvictionPolicy
from repro.core.radix_tree import common_prefix_length
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace

_NEVER = float("inf")


class ClairvoyantEviction(EvictionPolicy):
    """Farthest-next-use victim selection over a known request schedule.

    Parameters
    ----------
    schedule:
        The inputs of every request in service order.  ``cursor`` marks the
        first request that has not been served yet; only requests at or
        after the cursor count as future uses.
    """

    name = "clairvoyant"

    def __init__(self, schedule: list[np.ndarray]) -> None:
        self.schedule = [np.asarray(s, dtype=np.int32) for s in schedule]
        self.cursor = 0

    def advance(self, cursor: int) -> None:
        """Mark requests before ``cursor`` as already served."""
        if not 0 <= cursor <= len(self.schedule):
            raise ValueError(
                f"cursor must be in [0, {len(self.schedule)}], got {cursor}"
            )
        self.cursor = cursor

    def _next_use(self, path: np.ndarray) -> float:
        """Index of the next scheduled request whose input extends ``path``.

        A checkpoint at prefix length ``p`` serves request ``r`` only when
        ``r``'s input strictly extends the prefix (at least the final input
        token must be prefilled to produce first-step logits), mirroring
        the cache's ``max_seq_len = len(tokens) - 1`` hit rule.
        """
        p = len(path)
        for index in range(self.cursor, len(self.schedule)):
            future = self.schedule[index]
            if len(future) > p and common_prefix_length(future, path) == p:
                return float(index)
        return _NEVER

    def select_victim(self, candidates: list[EvictionCandidate]) -> EvictionCandidate:
        if not candidates:
            raise ValueError("no eviction candidates")
        scored = [
            (self._next_use(c.node.path_tokens()), c.sort_key, c) for c in candidates
        ]
        # Farthest next use goes first; among the never-reused, evict the
        # least FLOP-efficient first so surviving dead weight is cheap.
        never = [(c.flop_efficiency, key, c) for use, key, c in scored if use == _NEVER]
        if never:
            return min(never, key=lambda item: (item[0], item[1]))[2]
        return max(scored, key=lambda item: (item[0],))[2]


@dataclass
class ClairvoyantResult:
    """Outcome of one clairvoyant replay."""

    token_hit_rate: float
    n_requests: int
    evictions: int
    hit_tokens: int
    input_tokens: int
    per_request_hits: list[int] = field(default_factory=list)


def clairvoyant_replay(
    model: ModelConfig,
    trace: Trace,
    capacity_bytes: int,
) -> ClairvoyantResult:
    """Replay ``trace`` through a Marconi cache evicting with future knowledge.

    Requests are served in nominal order (zero service latency), matching
    the engine-less replays used by the static-alpha oracle, so results are
    directly comparable with :func:`repro.baselines.oracle.tune_static_alpha`.
    """
    requests = list(trace.iter_requests_nominal())
    if not requests:
        raise ValueError("cannot replay an empty trace")
    schedule = [input_tokens for _, _, _, input_tokens, _ in requests]

    cache = MarconiCache(model, capacity_bytes, eviction="lru")
    policy = ClairvoyantEviction(schedule)
    cache.policy = policy

    per_request_hits: list[int] = []
    for index, (now, _, _, input_tokens, full_tokens) in enumerate(requests):
        # The request being served is no longer a *future* use of anything.
        policy.advance(index + 1)
        with cache.begin(input_tokens, now) as session:
            per_request_hits.append(session.hit_tokens)
            session.commit(full_tokens, now)

    stats = cache.stats
    return ClairvoyantResult(
        token_hit_rate=stats.token_hit_rate,
        n_requests=len(requests),
        evictions=stats.evictions,
        hit_tokens=stats.hit_tokens,
        input_tokens=stats.input_tokens,
        per_request_hits=per_request_hits,
    )
