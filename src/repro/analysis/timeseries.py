"""Time-resolved cache behaviour: warmup curves and windowed hit rates.

Aggregate token hit rate hides the dynamics that matter operationally:
how long the cache takes to warm up after a (re)start, when the alpha
tuner's adoption kicks in, and whether a policy's advantage is steady or
episodic.  These helpers slice a simulation's request records into
rolling windows over *service* order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.results import RequestRecord


@dataclass(frozen=True)
class WindowPoint:
    """Token hit rate of one rolling window of requests."""

    end_time: float
    requests: int
    token_hit_rate: float


def windowed_hit_rate(
    records: list[RequestRecord], window: int
) -> list[WindowPoint]:
    """Token hit rate over consecutive windows of ``window`` requests.

    Records are processed in service-start order; the final, possibly
    partial window is included (its ``requests`` field says how full it
    is).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    ordered = sorted(records, key=lambda r: r.service_start)
    points: list[WindowPoint] = []
    for start in range(0, len(ordered), window):
        chunk = ordered[start : start + window]
        inputs = sum(r.input_len for r in chunk)
        hits = sum(r.hit_tokens for r in chunk)
        points.append(
            WindowPoint(
                end_time=chunk[-1].service_start,
                requests=len(chunk),
                token_hit_rate=hits / inputs if inputs else 0.0,
            )
        )
    return points


def cumulative_hit_rate(records: list[RequestRecord]) -> np.ndarray:
    """Running token hit rate after each served request (service order)."""
    ordered = sorted(records, key=lambda r: r.service_start)
    hits = np.cumsum([r.hit_tokens for r in ordered], dtype=np.float64)
    inputs = np.cumsum([r.input_len for r in ordered], dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(inputs > 0, hits / inputs, 0.0)
    return out


def warmup_requests(
    records: list[RequestRecord], fraction: float = 0.9, window: int = 20
) -> int:
    """Requests served before the windowed hit rate first reaches
    ``fraction`` of its steady-state (final-window) value.

    Returns ``len(records)`` when the threshold is never reached — e.g. a
    cold cache that thrashes forever.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    points = windowed_hit_rate(records, window)
    if not points:
        return 0
    steady = points[-1].token_hit_rate
    threshold = fraction * steady
    served = 0
    for point in points:
        served += point.requests
        if point.token_hit_rate >= threshold:
            return served
    return len(records)
