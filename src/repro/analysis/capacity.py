"""Capacity planning: hit-rate-vs-budget curves and sizing recommendations.

The operator-facing question behind the paper's Fig. 11: *how much cache do
I need for this workload?*  The planner replays a representative trace at
candidate budgets (nominal order — zero service latency — so the answer
depends only on the workload and policy, not on a latency model) and
either reports the full curve or searches for the smallest budget that
meets a target token hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import make_cache
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class CapacityPoint:
    """Token hit rate measured at one cache budget."""

    capacity_bytes: int
    token_hit_rate: float


def _replay_hit_rate(
    model: ModelConfig, trace: Trace, capacity_bytes: int, policy: str, **kwargs
) -> float:
    cache = make_cache(policy, model, capacity_bytes, **kwargs)
    for now, _, _, inp, full in trace.iter_requests_nominal():
        with cache.begin(inp, now) as session:
            session.commit(full, now)
    return cache.stats.token_hit_rate


def capacity_curve(
    model: ModelConfig,
    trace: Trace,
    capacities: list[int],
    policy: str = "marconi",
    **kwargs,
) -> list[CapacityPoint]:
    """Measure the hit rate at each candidate budget (ascending order)."""
    if not capacities:
        raise ValueError("need at least one candidate capacity")
    if any(c <= 0 for c in capacities):
        raise ValueError("capacities must be positive")
    return [
        CapacityPoint(c, _replay_hit_rate(model, trace, c, policy, **kwargs))
        for c in sorted(capacities)
    ]


@dataclass(frozen=True)
class CapacityRecommendation:
    """Outcome of a target-driven capacity search."""

    capacity_bytes: int
    token_hit_rate: float
    target_hit_rate: float
    attainable: bool

    @property
    def meets_target(self) -> bool:
        return self.token_hit_rate >= self.target_hit_rate


def recommend_capacity(
    model: ModelConfig,
    trace: Trace,
    target_hit_rate: float,
    *,
    low_bytes: int,
    high_bytes: int,
    policy: str = "marconi",
    rel_tol: float = 0.05,
    **kwargs,
) -> CapacityRecommendation:
    """Smallest budget in ``[low, high]`` meeting ``target_hit_rate``.

    Hit rate is non-decreasing in capacity up to replay noise, so a binary
    search converges; ``rel_tol`` bounds the final bracket width relative
    to the answer.  When even ``high_bytes`` misses the target, the result
    carries ``attainable=False`` with the hit rate measured at the top of
    the range (the workload's reuse opportunity may simply be below the
    target — check :func:`repro.analysis.taxonomy.classify_trace`).
    """
    if not 0.0 < target_hit_rate < 1.0:
        raise ValueError(f"target_hit_rate must be in (0, 1), got {target_hit_rate}")
    if not 0 < low_bytes < high_bytes:
        raise ValueError("need 0 < low_bytes < high_bytes")
    if not 0 < rel_tol < 1:
        raise ValueError(f"rel_tol must be in (0, 1), got {rel_tol}")

    top_rate = _replay_hit_rate(model, trace, high_bytes, policy, **kwargs)
    if top_rate < target_hit_rate:
        return CapacityRecommendation(
            capacity_bytes=high_bytes,
            token_hit_rate=top_rate,
            target_hit_rate=target_hit_rate,
            attainable=False,
        )

    low, high = low_bytes, high_bytes
    best_rate = top_rate
    while high - low > rel_tol * high:
        mid = (low + high) // 2
        rate = _replay_hit_rate(model, trace, mid, policy, **kwargs)
        if rate >= target_hit_rate:
            high, best_rate = mid, rate
        else:
            low = mid
    return CapacityRecommendation(
        capacity_bytes=high,
        token_hit_rate=best_rate,
        target_hit_rate=target_hit_rate,
        attainable=True,
    )
