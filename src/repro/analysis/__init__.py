"""Offline analysis tools: clairvoyant replay bounds and reuse taxonomy.

These tools answer the two questions the paper's policies are built around,
from the privileged offline position of having the whole trace up front:

* :mod:`repro.analysis.belady` — how much hit rate is attainable by *any*
  eviction order (a Belady-style farthest-next-use replay), giving online
  policies an upper-bound yardstick.
* :mod:`repro.analysis.taxonomy` — how much of each request's input is
  reusable, split into the paper's two prefix-reuse classes ("purely
  input" vs "input + output", section 4.1).
"""

from repro.analysis.capacity import (
    CapacityPoint,
    CapacityRecommendation,
    capacity_curve,
    recommend_capacity,
)
from repro.analysis.belady import (
    ClairvoyantEviction,
    ClairvoyantResult,
    clairvoyant_replay,
)
from repro.analysis.timeseries import (
    WindowPoint,
    cumulative_hit_rate,
    warmup_requests,
    windowed_hit_rate,
)
from repro.analysis.taxonomy import (
    RequestReuse,
    ReuseClass,
    TaxonomyReport,
    classify_trace,
)

__all__ = [
    "CapacityPoint",
    "CapacityRecommendation",
    "capacity_curve",
    "recommend_capacity",
    "ClairvoyantEviction",
    "ClairvoyantResult",
    "clairvoyant_replay",
    "ReuseClass",
    "RequestReuse",
    "TaxonomyReport",
    "classify_trace",
    "WindowPoint",
    "windowed_hit_rate",
    "cumulative_hit_rate",
    "warmup_requests",
]
