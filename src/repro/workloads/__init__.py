"""Synthetic workload generation: multi-turn chat and agentic request traces.

The paper evaluates on tokenized LMSys-Chat-1M, ShareGPT, and SWE-Bench
(SWE-Agent) traces.  Those traces are multi-gigabyte downloads of real user
data; the caching policies, however, only observe three things: token-ID
overlap structure (which prefixes are shared, within and across sessions),
sequence length scales, and arrival timing.  The generators here reproduce
exactly those properties per dataset — see each module's docstring for the
distributional targets taken from the paper's Fig. 6.
"""

from repro.workloads.arrivals import (
    ARRIVAL_PROCESS_NAMES,
    DiurnalProcess,
    FlashCrowdProcess,
    MarkovModulatedPoisson,
    PoissonProcess,
    exponential_think_times,
    make_arrival_process,
)
from repro.workloads.distributions import (
    GeometricCount,
    LogNormalLength,
    sample_zipf,
    zipf_weights,
)
from repro.workloads.docqa import DOCQA_SHAPE, generate_docqa_trace
from repro.workloads.fewshot import FEWSHOT_SHAPE, generate_fewshot_trace
from repro.workloads.lmsys import LMSYS_SHAPE, generate_lmsys_trace
from repro.workloads.mixture import component_of, mix_streams, mix_traces
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    generate_trace,
    generate_trace_stream,
)
from repro.workloads.selfconsistency import (
    SELFCONSISTENCY_SHAPE,
    SelfConsistencyShape,
    generate_selfconsistency_stream,
    generate_selfconsistency_trace,
)
from repro.workloads.sessions import (
    SessionShape,
    WorkloadParams,
    build_trace,
    stream_trace,
)
from repro.workloads.sharegpt import SHAREGPT_SHAPE, generate_sharegpt_trace
from repro.workloads.swebench import SWEBENCH_SHAPE, generate_swebench_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession, TraceStream
from repro.workloads.vocab import SharedSegmentPool, fresh_tokens

__all__ = [
    "PoissonProcess",
    "MarkovModulatedPoisson",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "ARRIVAL_PROCESS_NAMES",
    "make_arrival_process",
    "exponential_think_times",
    "LogNormalLength",
    "GeometricCount",
    "zipf_weights",
    "sample_zipf",
    "SharedSegmentPool",
    "fresh_tokens",
    "Trace",
    "TraceRound",
    "TraceSession",
    "TraceStream",
    "SessionShape",
    "SelfConsistencyShape",
    "WorkloadParams",
    "build_trace",
    "stream_trace",
    "generate_lmsys_trace",
    "generate_sharegpt_trace",
    "generate_swebench_trace",
    "generate_docqa_trace",
    "generate_fewshot_trace",
    "generate_selfconsistency_trace",
    "generate_selfconsistency_stream",
    "LMSYS_SHAPE",
    "SHAREGPT_SHAPE",
    "SWEBENCH_SHAPE",
    "DOCQA_SHAPE",
    "FEWSHOT_SHAPE",
    "SELFCONSISTENCY_SHAPE",
    "generate_trace",
    "generate_trace_stream",
    "WORKLOAD_NAMES",
    "mix_traces",
    "mix_streams",
    "component_of",
]
