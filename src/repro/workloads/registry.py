"""Name-based access to the workload generators.

``lmsys``, ``sharegpt``, and ``swebench`` are the paper's three evaluation
workloads; ``docqa``, ``fewshot``, and ``selfconsistency`` instantiate the
remaining purely-input scenarios of the section 4.1 taxonomy.
"""

from __future__ import annotations

from repro.workloads.docqa import generate_docqa_trace
from repro.workloads.fewshot import generate_fewshot_trace
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.selfconsistency import generate_selfconsistency_trace
from repro.workloads.sessions import WorkloadParams
from repro.workloads.sharegpt import generate_sharegpt_trace
from repro.workloads.swebench import generate_swebench_trace
from repro.workloads.trace import Trace

_GENERATORS = {
    "lmsys": generate_lmsys_trace,
    "sharegpt": generate_sharegpt_trace,
    "swebench": generate_swebench_trace,
    "docqa": generate_docqa_trace,
    "fewshot": generate_fewshot_trace,
    "selfconsistency": generate_selfconsistency_trace,
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(_GENERATORS))


def generate_trace(workload: str, params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a trace by workload name (see :data:`WORKLOAD_NAMES`)."""
    try:
        generator = _GENERATORS[workload]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; known: {WORKLOAD_NAMES}"
        ) from None
    return generator(params, **kwargs)
