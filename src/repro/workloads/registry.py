"""Name-based access to the workload generators.

``lmsys``, ``sharegpt``, and ``swebench`` are the paper's three evaluation
workloads; ``docqa``, ``fewshot``, and ``selfconsistency`` instantiate the
remaining purely-input scenarios of the section 4.1 taxonomy.
"""

from __future__ import annotations

from repro.workloads.arrivals import ARRIVAL_PROCESS_NAMES
from repro.workloads.docqa import DOCQA_SHAPE, generate_docqa_trace
from repro.workloads.fewshot import FEWSHOT_SHAPE, generate_fewshot_trace
from repro.workloads.lmsys import LMSYS_SHAPE, generate_lmsys_trace
from repro.workloads.selfconsistency import (
    generate_selfconsistency_stream,
    generate_selfconsistency_trace,
)
from repro.workloads.sessions import WorkloadParams, stream_trace
from repro.workloads.sharegpt import SHAREGPT_SHAPE, generate_sharegpt_trace
from repro.workloads.swebench import SWEBENCH_SHAPE, generate_swebench_trace
from repro.workloads.trace import Trace, TraceStream

_GENERATORS = {
    "lmsys": generate_lmsys_trace,
    "sharegpt": generate_sharegpt_trace,
    "swebench": generate_swebench_trace,
    "docqa": generate_docqa_trace,
    "fewshot": generate_fewshot_trace,
    "selfconsistency": generate_selfconsistency_trace,
}

# The shape-driven workloads share one lazy generator (stream_trace);
# selfconsistency has its own reorder-buffered stream.
_SHAPES = {
    "lmsys": LMSYS_SHAPE,
    "sharegpt": SHAREGPT_SHAPE,
    "swebench": SWEBENCH_SHAPE,
    "docqa": DOCQA_SHAPE,
    "fewshot": FEWSHOT_SHAPE,
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(_GENERATORS))


def _resolve_params(params: WorkloadParams | None, kwargs: dict) -> WorkloadParams:
    if params is None:
        return WorkloadParams(**kwargs)
    if kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return params


def generate_trace(workload: str, params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a trace by workload name (see :data:`WORKLOAD_NAMES`)."""
    try:
        generator = _GENERATORS[workload]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; known: {WORKLOAD_NAMES}"
        ) from None
    return generator(params, **kwargs)


def generate_trace_stream(
    workload: str, params: WorkloadParams | None = None, **kwargs
) -> TraceStream:
    """Lazily generate a trace by workload name.

    Every registered workload has a streaming variant: sessions are
    produced on demand in arrival order, so arbitrarily long traces replay
    through the engines with memory bounded by the number of concurrently
    active sessions.  For the shape-driven workloads the stream's
    ``materialize()`` is byte-identical to :func:`generate_trace`;
    ``selfconsistency`` yields the same sessions sorted by arrival time
    (its materialized builder keeps per-query generation order).
    """
    if workload == "selfconsistency":
        return generate_selfconsistency_stream(params, **kwargs)
    try:
        shape = _SHAPES[workload]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; known: {WORKLOAD_NAMES}"
        ) from None
    return stream_trace(shape, _resolve_params(params, kwargs))


__all__ = [
    "WORKLOAD_NAMES",
    "ARRIVAL_PROCESS_NAMES",
    "generate_trace",
    "generate_trace_stream",
]
