"""Trace schema: sessions of multi-round requests with arrival timing.

A trace is the unit the experiment harness consumes.  Sessions arrive at
``arrival_time``; within a session, round ``k``'s request input is the full
accumulated context (all previous inputs and outputs) plus the round's new
input segment, and the next round arrives ``think_times[k+1]`` seconds after
round ``k``'s response completes (closed-loop per session).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

import numpy as np

from repro.core.tokens import TokenSeq


@dataclass
class TraceRound:
    """One request round: the newly appended input and the model's output."""

    new_input_tokens: np.ndarray
    output_tokens: np.ndarray

    def __post_init__(self) -> None:
        self.new_input_tokens = np.asarray(self.new_input_tokens, dtype=np.int32)
        self.output_tokens = np.asarray(self.output_tokens, dtype=np.int32)
        if len(self.new_input_tokens) == 0:
            raise ValueError("a round must append at least one input token")
        if len(self.output_tokens) == 0:
            raise ValueError("a round must produce at least one output token")


@dataclass
class TraceSession:
    """A chat session / agent trajectory: rounds plus think-time gaps."""

    session_id: int
    arrival_time: float
    rounds: list[TraceRound]
    think_times: list[float]

    def __post_init__(self) -> None:
        if not self.rounds:
            raise ValueError("session must contain at least one round")
        if len(self.think_times) != len(self.rounds):
            raise ValueError(
                f"need one think time per round (first is 0), got "
                f"{len(self.think_times)} for {len(self.rounds)} rounds"
            )
        if self.think_times[0] != 0.0:
            raise ValueError("think time before the first round must be 0")
        if any(t < 0 for t in self.think_times):
            raise ValueError("think times must be non-negative")
        # Per-round materialization cache: round_index -> (input, full)
        # interned handles.  Replays walk rounds in order, so round k+1
        # extends round k's full sequence instead of re-concatenating the
        # whole history; repeated replays of the same trace (benchmark
        # repeats, A/B sweeps) reuse the handles and their cached hashes.
        self._interned: dict[int, tuple[TokenSeq, TokenSeq]] = {}

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def interned_round(self, round_index: int) -> tuple[TokenSeq, TokenSeq]:
        """``(full_input, full_sequence)`` of a round as interned handles.

        The handles carry the cached bytes/hashes every downstream layer
        (radix match/insert, router probes) reuses; materialization itself
        is incremental from the previous round's full sequence.
        """
        cached = self._interned.get(round_index)
        if cached is not None:
            return cached
        this_round = self.rounds[round_index]
        prev = self._interned.get(round_index - 1)
        if prev is not None:
            # Extend the previous round: full_input(k) is exactly
            # full_sequence(k-1) ++ new_input(k) by construction.
            input_arr = np.concatenate([prev[1].arr, this_round.new_input_tokens])
        else:
            parts: list[np.ndarray] = []
            for r in self.rounds[:round_index]:
                parts.append(r.new_input_tokens)
                parts.append(r.output_tokens)
            parts.append(this_round.new_input_tokens)
            input_arr = np.concatenate(parts)
        full_arr = np.concatenate([input_arr, this_round.output_tokens])
        entry = (TokenSeq(input_arr, copy=False), TokenSeq(full_arr, copy=False))
        self._interned[round_index] = entry
        return entry

    def full_input(self, round_index: int) -> np.ndarray:
        """Complete input of round ``round_index`` (accumulated context + new)."""
        return self.interned_round(round_index)[0].arr

    def full_sequence(self, round_index: int) -> np.ndarray:
        """Input of round ``round_index`` plus its output."""
        return self.interned_round(round_index)[1].arr

    def input_lengths(self) -> list[int]:
        """Full-input token count of every round (the Fig. 6 input metric)."""
        lengths = []
        context = 0
        for r in self.rounds:
            lengths.append(context + len(r.new_input_tokens))
            context += len(r.new_input_tokens) + len(r.output_tokens)
        return lengths

    def output_lengths(self) -> list[int]:
        return [len(r.output_tokens) for r in self.rounds]


@dataclass
class Trace:
    """A full workload trace: many sessions plus generation metadata."""

    name: str
    seed: int
    sessions: list[TraceSession]
    metadata: dict = field(default_factory=dict)
    _fingerprint: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    @property
    def n_requests(self) -> int:
        return sum(s.n_rounds for s in self.sessions)

    def input_lengths(self) -> np.ndarray:
        """All requests' full-input lengths (Fig. 6 input distribution)."""
        values: list[int] = []
        for session in self.sessions:
            values.extend(session.input_lengths())
        return np.asarray(values, dtype=np.int64)

    def output_lengths(self) -> np.ndarray:
        values: list[int] = []
        for session in self.sessions:
            values.extend(session.output_lengths())
        return np.asarray(values, dtype=np.int64)

    @property
    def total_input_tokens(self) -> int:
        return int(self.input_lengths().sum())

    def iter_requests_nominal(
        self,
    ) -> Iterator[tuple[float, int, int, np.ndarray, np.ndarray]]:
        """Yield ``(nominal_time, session_id, round, input, full_sequence)``.

        Nominal time assumes zero service latency (arrival plus accumulated
        think times) and is used by engine-less replays (the oracle, quick
        policy comparisons); the serving simulator computes the true
        closed-loop timing instead.
        """
        entries = []
        for session in self.sessions:
            t = session.arrival_time
            for k in range(session.n_rounds):
                t += session.think_times[k]
                entries.append(
                    (
                        t,
                        session.session_id,
                        k,
                        session.full_input(k),
                        session.full_sequence(k),
                    )
                )
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        yield from entries

    def content_fingerprint(self) -> int:
        """CRC32 over the trace's full content (ids, timing, tokens).

        Computed once and memoized; traces are treated as immutable after
        construction.  O(total tokens), but the ``tobytes`` CRC runs at
        memory bandwidth — negligible next to one simulation of the same
        trace, which is the only context that asks for it.
        """
        if self._fingerprint is None:
            crc = 0
            for session in self.sessions:
                header = np.asarray(
                    [float(session.session_id), session.arrival_time]
                    + list(session.think_times),
                    dtype=np.float64,
                )
                crc = zlib.crc32(header.tobytes(), crc)
                for r in session.rounds:
                    crc = zlib.crc32(r.new_input_tokens.tobytes(), crc)
                    crc = zlib.crc32(r.output_tokens.tobytes(), crc)
            self._fingerprint = crc
        return self._fingerprint

    def cache_key(self) -> tuple:
        """Hashable process-independent identity of the trace.

        Unlike ``id(trace)``, this survives pickling across process-pool
        workers and cannot collide after garbage collection.  The content
        fingerprint makes the key honest even for hand-built or
        file-loaded traces that reuse a generated trace's header: two
        traces only share a key if their sessions match byte for byte.
        """
        return (
            self.name,
            self.seed,
            self.n_sessions,
            json.dumps(self.metadata, sort_keys=True, default=str),
            self.content_fingerprint(),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write the trace as one JSON header line plus one line per session."""
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps(_header_record(self.name, self.seed, self.metadata)) + "\n")
            for session in self.sessions:
                fh.write(json.dumps(_session_to_record(session)) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_jsonl`."""
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            if header.get("kind") != "trace-header":
                raise ValueError(f"{path} is not a trace file (bad header)")
            sessions = [_session_from_record(json.loads(line)) for line in fh]
        return cls(
            name=header["name"],
            seed=header["seed"],
            sessions=sessions,
            metadata=header.get("metadata", {}),
        )


def _header_record(name: str, seed: int, metadata: dict) -> dict:
    return {"kind": "trace-header", "name": name, "seed": seed, "metadata": metadata}


def _session_to_record(session: TraceSession) -> dict:
    return {
        "session_id": session.session_id,
        "arrival_time": session.arrival_time,
        "think_times": list(session.think_times),
        "rounds": [
            {
                "input": r.new_input_tokens.tolist(),
                "output": r.output_tokens.tolist(),
            }
            for r in session.rounds
        ],
    }


def _session_from_record(record: dict) -> TraceSession:
    rounds = [
        TraceRound(
            new_input_tokens=np.asarray(r["input"], dtype=np.int32),
            output_tokens=np.asarray(r["output"], dtype=np.int32),
        )
        for r in record["rounds"]
    ]
    return TraceSession(
        session_id=record["session_id"],
        arrival_time=record["arrival_time"],
        rounds=rounds,
        think_times=list(record["think_times"]),
    )


class TraceStream:
    """A trace whose sessions are produced lazily, in arrival order.

    Where :class:`Trace` materializes every session up front, a stream
    holds only a *recipe*: ``factory`` returns a fresh session iterator
    each time, so the stream can be consumed any number of times and each
    pass is deterministic (generators must derive all randomness from
    their own seed material, never from shared mutable state).  The
    engine's streaming admission path pulls one session at a time, so a
    million-session trace replays with memory proportional to the number
    of *concurrently active* sessions, not the trace length.

    Contract: sessions must arrive with non-decreasing ``arrival_time``
    (:meth:`iter_sessions` enforces this) — the engine merges the stream
    into its event queue and cannot travel back in time.  Use
    :meth:`materialize` to collapse a small stream into a plain
    :class:`Trace` (analysis helpers, golden fixtures).
    """

    def __init__(
        self,
        name: str,
        seed: int,
        factory: Callable[[], Iterator[TraceSession]],
        *,
        n_sessions: Optional[int] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.seed = seed
        self._factory = factory
        self.n_sessions = n_sessions
        self.metadata = dict(metadata) if metadata else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "?" if self.n_sessions is None else str(self.n_sessions)
        return f"TraceStream(name={self.name!r}, seed={self.seed}, n_sessions={size})"

    def cache_key(self) -> Optional[tuple]:
        """Hashable recipe identity, or ``None`` when the stream has none.

        Streams cannot be content-fingerprinted without consuming a full
        pass, so the key is the recipe's identity — valid only when the
        recipe is actually identified: generated streams embed their
        generation params in ``metadata``.  An anonymous stream (no
        metadata, unknown length — e.g. a bare factory) returns ``None``
        and callers must fall back to object identity rather than risk
        aliasing two different recipes that share a name and seed.
        """
        if not self.metadata and self.n_sessions is None:
            return None
        return (
            "stream",
            self.name,
            self.seed,
            self.n_sessions,
            json.dumps(self.metadata, sort_keys=True, default=str),
        )

    def iter_sessions(self) -> Iterator[TraceSession]:
        """A fresh pass over the sessions, validating arrival monotonicity."""
        last = float("-inf")
        for session in self._factory():
            if session.arrival_time < last:
                raise ValueError(
                    f"stream {self.name!r} yielded arrival_time "
                    f"{session.arrival_time} after {last}; streams must be "
                    "sorted by arrival time"
                )
            last = session.arrival_time
            yield session

    __iter__ = iter_sessions

    def materialize(self) -> Trace:
        """Collapse the stream into an in-memory :class:`Trace`."""
        return Trace(
            name=self.name,
            seed=self.seed,
            sessions=list(self.iter_sessions()),
            metadata=dict(self.metadata),
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceStream":
        """View an in-memory trace as a stream (sessions sorted by arrival)."""
        ordered = sorted(trace.sessions, key=lambda s: (s.arrival_time, s.session_id))

        def factory() -> Iterator[TraceSession]:
            return iter(ordered)

        return cls(
            name=trace.name,
            seed=trace.seed,
            factory=factory,
            n_sessions=trace.n_sessions,
            metadata=dict(trace.metadata),
        )

    # ------------------------------------------------------------------
    # Serialization (single-pass; never holds more than one session)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> int:
        """Stream the sessions to a trace JSONL file; returns sessions written."""
        path = Path(path)
        written = 0
        with path.open("w") as fh:
            fh.write(json.dumps(_header_record(self.name, self.seed, self.metadata)) + "\n")
            for session in self.iter_sessions():
                fh.write(json.dumps(_session_to_record(session)) + "\n")
                written += 1
        return written

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "TraceStream":
        """Lazily read a trace JSONL file (one session in memory at a time)."""
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
        if header.get("kind") != "trace-header":
            raise ValueError(f"{path} is not a trace file (bad header)")

        def factory() -> Iterator[TraceSession]:
            with path.open() as fh:
                fh.readline()  # header
                for line in fh:
                    yield _session_from_record(json.loads(line))

        return cls(
            name=header["name"],
            seed=header["seed"],
            factory=factory,
            metadata=header.get("metadata", {}),
        )
