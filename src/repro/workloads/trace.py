"""Trace schema: sessions of multi-round requests with arrival timing.

A trace is the unit the experiment harness consumes.  Sessions arrive at
``arrival_time``; within a session, round ``k``'s request input is the full
accumulated context (all previous inputs and outputs) plus the round's new
input segment, and the next round arrives ``think_times[k+1]`` seconds after
round ``k``'s response completes (closed-loop per session).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np


@dataclass
class TraceRound:
    """One request round: the newly appended input and the model's output."""

    new_input_tokens: np.ndarray
    output_tokens: np.ndarray

    def __post_init__(self) -> None:
        self.new_input_tokens = np.asarray(self.new_input_tokens, dtype=np.int32)
        self.output_tokens = np.asarray(self.output_tokens, dtype=np.int32)
        if len(self.new_input_tokens) == 0:
            raise ValueError("a round must append at least one input token")
        if len(self.output_tokens) == 0:
            raise ValueError("a round must produce at least one output token")


@dataclass
class TraceSession:
    """A chat session / agent trajectory: rounds plus think-time gaps."""

    session_id: int
    arrival_time: float
    rounds: list[TraceRound]
    think_times: list[float]

    def __post_init__(self) -> None:
        if not self.rounds:
            raise ValueError("session must contain at least one round")
        if len(self.think_times) != len(self.rounds):
            raise ValueError(
                f"need one think time per round (first is 0), got "
                f"{len(self.think_times)} for {len(self.rounds)} rounds"
            )
        if self.think_times[0] != 0.0:
            raise ValueError("think time before the first round must be 0")
        if any(t < 0 for t in self.think_times):
            raise ValueError("think times must be non-negative")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def full_input(self, round_index: int) -> np.ndarray:
        """Complete input of round ``round_index`` (accumulated context + new)."""
        parts: list[np.ndarray] = []
        for r in self.rounds[:round_index]:
            parts.append(r.new_input_tokens)
            parts.append(r.output_tokens)
        parts.append(self.rounds[round_index].new_input_tokens)
        return np.concatenate(parts)

    def full_sequence(self, round_index: int) -> np.ndarray:
        """Input of round ``round_index`` plus its output."""
        return np.concatenate(
            [self.full_input(round_index), self.rounds[round_index].output_tokens]
        )

    def input_lengths(self) -> list[int]:
        """Full-input token count of every round (the Fig. 6 input metric)."""
        lengths = []
        context = 0
        for r in self.rounds:
            lengths.append(context + len(r.new_input_tokens))
            context += len(r.new_input_tokens) + len(r.output_tokens)
        return lengths

    def output_lengths(self) -> list[int]:
        return [len(r.output_tokens) for r in self.rounds]


@dataclass
class Trace:
    """A full workload trace: many sessions plus generation metadata."""

    name: str
    seed: int
    sessions: list[TraceSession]
    metadata: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    @property
    def n_requests(self) -> int:
        return sum(s.n_rounds for s in self.sessions)

    def input_lengths(self) -> np.ndarray:
        """All requests' full-input lengths (Fig. 6 input distribution)."""
        values: list[int] = []
        for session in self.sessions:
            values.extend(session.input_lengths())
        return np.asarray(values, dtype=np.int64)

    def output_lengths(self) -> np.ndarray:
        values: list[int] = []
        for session in self.sessions:
            values.extend(session.output_lengths())
        return np.asarray(values, dtype=np.int64)

    @property
    def total_input_tokens(self) -> int:
        return int(self.input_lengths().sum())

    def iter_requests_nominal(
        self,
    ) -> Iterator[tuple[float, int, int, np.ndarray, np.ndarray]]:
        """Yield ``(nominal_time, session_id, round, input, full_sequence)``.

        Nominal time assumes zero service latency (arrival plus accumulated
        think times) and is used by engine-less replays (the oracle, quick
        policy comparisons); the serving simulator computes the true
        closed-loop timing instead.
        """
        entries = []
        for session in self.sessions:
            t = session.arrival_time
            for k in range(session.n_rounds):
                t += session.think_times[k]
                entries.append(
                    (
                        t,
                        session.session_id,
                        k,
                        session.full_input(k),
                        session.full_sequence(k),
                    )
                )
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        yield from entries

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """Write the trace as one JSON header line plus one line per session."""
        path = Path(path)
        with path.open("w") as fh:
            header = {
                "kind": "trace-header",
                "name": self.name,
                "seed": self.seed,
                "metadata": self.metadata,
            }
            fh.write(json.dumps(header) + "\n")
            for session in self.sessions:
                record = {
                    "session_id": session.session_id,
                    "arrival_time": session.arrival_time,
                    "think_times": list(session.think_times),
                    "rounds": [
                        {
                            "input": r.new_input_tokens.tolist(),
                            "output": r.output_tokens.tolist(),
                        }
                        for r in session.rounds
                    ],
                }
                fh.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_jsonl`."""
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            if header.get("kind") != "trace-header":
                raise ValueError(f"{path} is not a trace file (bad header)")
            sessions = []
            for line in fh:
                record = json.loads(line)
                rounds = [
                    TraceRound(
                        new_input_tokens=np.asarray(r["input"], dtype=np.int32),
                        output_tokens=np.asarray(r["output"], dtype=np.int32),
                    )
                    for r in record["rounds"]
                ]
                sessions.append(
                    TraceSession(
                        session_id=record["session_id"],
                        arrival_time=record["arrival_time"],
                        rounds=rounds,
                        think_times=list(record["think_times"]),
                    )
                )
        return cls(
            name=header["name"],
            seed=header["seed"],
            sessions=sessions,
            metadata=header.get("metadata", {}),
        )
