"""Workload mixtures: several tenant workloads sharing one cache.

Production deployments rarely serve a single traffic class; a chatbot
tenant (short, bursty, heavy input+output reuse) typically shares the
serving fleet — and therefore the prefix cache — with agentic or batch
tenants (long contexts, purely-input reuse).  A mixture interleaves
component traces on a common timeline so cache policies can be stressed on
the *combination*: the regime where a recency-only policy lets one
tenant's burst evict another tenant's far more FLOP-efficient prefixes.

Sessions are re-identified with per-component offsets so downstream
consumers (engine, cluster router, analysis) see one coherent trace;
``metadata["components"]`` records the provenance of each id range.
"""

from __future__ import annotations

from repro.workloads.trace import Trace, TraceSession

# Component session-id ranges are spaced this far apart; the mixture
# refuses components larger than this so ids can never collide.
_ID_STRIDE = 1_000_000


def mix_traces(traces: list[Trace], name: str | None = None) -> Trace:
    """Interleave component traces on their shared timeline.

    Arrival times are kept as generated — components already place their
    sessions on an absolute clock, so mixing is a merge, not a reschedule.
    Session ids are remapped to ``component_index * 1e6 + original_id``.
    """
    if not traces:
        raise ValueError("need at least one component trace")
    sessions: list[TraceSession] = []
    components = []
    for index, component in enumerate(traces):
        if component.n_sessions >= _ID_STRIDE:
            raise ValueError(
                f"component {component.name!r} has {component.n_sessions} sessions; "
                f"the mixture supports at most {_ID_STRIDE - 1} per component"
            )
        offset = index * _ID_STRIDE
        for session in component.sessions:
            sessions.append(
                TraceSession(
                    session_id=offset + session.session_id,
                    arrival_time=session.arrival_time,
                    rounds=session.rounds,
                    think_times=session.think_times,
                )
            )
        components.append(
            {
                "name": component.name,
                "seed": component.seed,
                "n_sessions": component.n_sessions,
                "session_id_offset": offset,
            }
        )
    sessions.sort(key=lambda s: (s.arrival_time, s.session_id))
    return Trace(
        name=name or "+".join(t.name for t in traces),
        seed=traces[0].seed,
        sessions=sessions,
        metadata={"components": components},
    )


def component_of(trace: Trace, session_id: int) -> str:
    """Name of the mixture component a session id belongs to."""
    components = trace.metadata.get("components")
    if not components:
        raise ValueError(f"trace {trace.name!r} is not a mixture")
    index = session_id // _ID_STRIDE
    if not 0 <= index < len(components):
        raise KeyError(f"session id {session_id} outside any component range")
    return components[index]["name"]
