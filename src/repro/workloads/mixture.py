"""Workload mixtures: several tenant workloads sharing one cache.

Production deployments rarely serve a single traffic class; a chatbot
tenant (short, bursty, heavy input+output reuse) typically shares the
serving fleet — and therefore the prefix cache — with agentic or batch
tenants (long contexts, purely-input reuse).  A mixture interleaves
component traces on a common timeline so cache policies can be stressed on
the *combination*: the regime where a recency-only policy lets one
tenant's burst evict another tenant's far more FLOP-efficient prefixes.

Sessions are re-identified with per-component offsets so downstream
consumers (engine, cluster router, analysis) see one coherent trace;
``metadata["components"]`` records the provenance of each id range.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.workloads.trace import Trace, TraceSession, TraceStream

# Component session-id ranges are spaced this far apart; the mixture
# refuses components larger than this so ids can never collide.
_ID_STRIDE = 1_000_000


def mix_traces(traces: list[Trace], name: str | None = None) -> Trace:
    """Interleave component traces on their shared timeline.

    Arrival times are kept as generated — components already place their
    sessions on an absolute clock, so mixing is a merge, not a reschedule.
    Session ids are remapped to ``component_index * 1e6 + original_id``.
    """
    if not traces:
        raise ValueError("need at least one component trace")
    sessions: list[TraceSession] = []
    components = []
    for index, component in enumerate(traces):
        if component.n_sessions >= _ID_STRIDE:
            raise ValueError(
                f"component {component.name!r} has {component.n_sessions} sessions; "
                f"the mixture supports at most {_ID_STRIDE - 1} per component"
            )
        offset = index * _ID_STRIDE
        for session in component.sessions:
            sessions.append(
                TraceSession(
                    session_id=offset + session.session_id,
                    arrival_time=session.arrival_time,
                    rounds=session.rounds,
                    think_times=session.think_times,
                )
            )
        components.append(
            {
                "name": component.name,
                "seed": component.seed,
                "n_sessions": component.n_sessions,
                "session_id_offset": offset,
            }
        )
    sessions.sort(key=lambda s: (s.arrival_time, s.session_id))
    return Trace(
        name=name or "+".join(t.name for t in traces),
        seed=traces[0].seed,
        sessions=sessions,
        metadata={"components": components},
    )


def _remap(session: TraceSession, offset: int) -> TraceSession:
    return TraceSession(
        session_id=offset + session.session_id,
        arrival_time=session.arrival_time,
        rounds=session.rounds,
        think_times=session.think_times,
    )


def mix_streams(
    streams: Sequence[TraceStream], name: str | None = None
) -> TraceStream:
    """Lazily interleave component streams on their shared timeline.

    The streaming counterpart of :func:`mix_traces`: a heap merge over the
    components' session iterators, holding one pending session per
    component.  Ids are remapped with the same per-component offsets, and
    ties are broken by the remapped session id — the same
    ``(arrival_time, session_id)`` order :func:`mix_traces` sorts by — so
    a mixed stream replays identically to the materialized mixture.

    Component sizes are checked lazily: a component that yields its
    :data:`_ID_STRIDE`-th session raises mid-iteration rather than up
    front (streams may not know their length).
    """
    if not streams:
        raise ValueError("need at least one component stream")
    streams = list(streams)

    def factory() -> Iterator[TraceSession]:
        def component_iter(index: int, stream: TraceStream) -> Iterator[TraceSession]:
            offset = index * _ID_STRIDE
            count = 0
            for session in stream.iter_sessions():
                count += 1
                if count > _ID_STRIDE - 1:
                    raise ValueError(
                        f"component {stream.name!r} exceeded "
                        f"{_ID_STRIDE - 1} sessions; ids would collide"
                    )
                yield _remap(session, offset)

        merged = heapq.merge(
            *(component_iter(i, s) for i, s in enumerate(streams)),
            key=lambda s: (s.arrival_time, s.session_id),
        )
        yield from merged

    known = [s.n_sessions for s in streams]
    return TraceStream(
        name=name or "+".join(s.name for s in streams),
        seed=streams[0].seed,
        factory=factory,
        n_sessions=sum(known) if all(n is not None for n in known) else None,
        metadata={
            "components": [
                {
                    "name": stream.name,
                    "seed": stream.seed,
                    "n_sessions": stream.n_sessions,
                    "session_id_offset": index * _ID_STRIDE,
                }
                for index, stream in enumerate(streams)
            ]
        },
    )


def component_of(trace: Trace, session_id: int) -> str:
    """Name of the mixture component a session id belongs to."""
    components = trace.metadata.get("components")
    if not components:
        raise ValueError(f"trace {trace.name!r} is not a mixture")
    index = session_id // _ID_STRIDE
    if not 0 <= index < len(components):
        raise KeyError(f"session id {session_id} outside any component range")
    return components[index]["name"]
