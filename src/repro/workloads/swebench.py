"""SWE-Agent-on-SWE-Bench-like agentic workload (paper Fig. 6c).

Targets: every trajectory opens with a long shared preamble (agent system
prompt + repository context — a small pool of "repositories" shared across
issues), each agent step appends a sizeable environment observation and a
short action, and trajectories run for many steps, producing the *widest*
input length distribution of the three workloads (hundreds of tokens to
tens of thousands) with uniformly short outputs.  That width is what makes
FLOP-aware eviction matter most on this workload (Figs. 8, 10).
"""

from __future__ import annotations

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace
from repro.workloads.trace import Trace

SWEBENCH_SHAPE = SessionShape(
    name="swebench",
    rounds=GeometricCount(mean=10.0, minimum=1, maximum=48),
    first_turn=LogNormalLength(median=900, sigma=0.9, minimum=100, maximum=6000),
    later_turn=LogNormalLength(median=550, sigma=1.2, minimum=30, maximum=10000),
    output=LogNormalLength(median=150, sigma=0.6, minimum=16, maximum=1000),
    shared_prefix_prob=1.0,
    n_templates=8,
    template_length=LogNormalLength(median=2200, sigma=0.35, minimum=600, maximum=6000),
    template_zipf=0.9,
    max_context_tokens=38000,
)


def generate_swebench_trace(params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a SWE-Bench-like trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_trace(SWEBENCH_SHAPE, params)
