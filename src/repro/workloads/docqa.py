"""Long-document QA workload (LooGLE-like; paper section 4.1 taxonomy).

The paper lists "long-document QA (Li et al., 2023)" among the *purely
input* reuse scenarios: many independent questions are asked against the
same long document, so requests share a huge input-only prefix (global
instruction preamble + document) and differ only in a short trailing
question.

Structure: each "session" is a single request — one question over one
document drawn from a small Zipf-popular pool of long documents.  Reuse is
entirely cross-session and input-only, which makes this the workload where
Marconi's speculative-insertion branch checkpoints carry all the value (the
last-decoded-token checkpoints are nearly useless because answers are never
extended).  Document lengths follow the LooGLE regime of ~10K-30K tokens,
so a single shared document dominates each request's FLOPs.
"""

from __future__ import annotations

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace
from repro.workloads.trace import Trace

DOCQA_SHAPE = SessionShape(
    name="docqa",
    rounds=GeometricCount(mean=1.0, minimum=1, maximum=1),
    first_turn=LogNormalLength(median=40, sigma=0.6, minimum=6, maximum=400),
    later_turn=LogNormalLength(median=40, sigma=0.6, minimum=6, maximum=400),
    output=LogNormalLength(median=90, sigma=0.8, minimum=8, maximum=800),
    shared_prefix_prob=1.0,
    n_templates=6,
    template_length=LogNormalLength(median=16000, sigma=0.4, minimum=8000, maximum=30000),
    template_zipf=1.1,
    max_context_tokens=40000,
    global_preamble_tokens=180,
)


def generate_docqa_trace(params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a long-document-QA trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_trace(DOCQA_SHAPE, params)
