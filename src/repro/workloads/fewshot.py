"""Few-shot prompting workload (MMLU-like; paper section 4.1 taxonomy).

The paper lists "few-shot examples (Hendrycks et al., 2020)" among the
*purely input* reuse scenarios: a batch-evaluation or API workload where
every request repeats the same instruction-plus-demonstrations preamble and
appends one short question, expecting a near-single-token answer.

Structure: single-round sessions over a pool of task templates (one per
"subject", MMLU-style).  Compared to :mod:`repro.workloads.docqa` the
shared prefixes are an order of magnitude shorter and the pool is larger,
so per-entry FLOP savings are modest and hit *frequency* carries the value
— the regime where plain recency-based policies are closest to Marconi, a
useful contrast case for ablations.
"""

from __future__ import annotations

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace
from repro.workloads.trace import Trace

FEWSHOT_SHAPE = SessionShape(
    name="fewshot",
    rounds=GeometricCount(mean=1.0, minimum=1, maximum=1),
    first_turn=LogNormalLength(median=70, sigma=0.5, minimum=10, maximum=500),
    later_turn=LogNormalLength(median=70, sigma=0.5, minimum=10, maximum=500),
    output=LogNormalLength(median=3, sigma=0.7, minimum=1, maximum=40),
    shared_prefix_prob=1.0,
    n_templates=57,  # MMLU's subject count
    template_length=LogNormalLength(median=1400, sigma=0.45, minimum=400, maximum=5000),
    template_zipf=1.0,
    max_context_tokens=16000,
    global_preamble_tokens=60,
)


def generate_fewshot_trace(params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a few-shot-prompting trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_trace(FEWSHOT_SHAPE, params)
