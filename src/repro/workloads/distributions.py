"""Length and count distributions for synthetic traces.

Sequence lengths in LLM traffic are famously heavy-tailed; the paper's
Fig. 6 histograms show lognormal-looking bodies with dataset-specific tails.
We model token counts as clipped lognormals (parameterized by their median,
which is more interpretable than the underlying mu) and per-session round
counts as clipped geometrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogNormalLength:
    """Clipped lognormal over token counts.

    ``median`` is the distribution median (``exp(mu)``); ``sigma`` is the
    log-space standard deviation controlling tail heaviness.
    """

    median: float
    sigma: float
    minimum: int = 1
    maximum: int = 1 << 20

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be positive, got {self.median}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        if not 1 <= self.minimum <= self.maximum:
            raise ValueError(
                f"need 1 <= minimum <= maximum, got [{self.minimum}, {self.maximum}]"
            )

    @property
    def mu(self) -> float:
        return math.log(self.median)

    @property
    def mean(self) -> float:
        """Mean of the *unclipped* lognormal."""
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def sample(self, rng: np.random.Generator) -> int:
        return int(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)
        return np.clip(np.rint(raw), self.minimum, self.maximum).astype(np.int64)


@dataclass(frozen=True)
class GeometricCount:
    """Clipped geometric over small counts (e.g. rounds per session)."""

    mean: float
    minimum: int = 1
    maximum: int = 1 << 16

    def __post_init__(self) -> None:
        if self.mean < 1:
            raise ValueError(f"mean must be >= 1, got {self.mean}")
        if not 1 <= self.minimum <= self.maximum:
            raise ValueError(
                f"need 1 <= minimum <= maximum, got [{self.minimum}, {self.maximum}]"
            )

    def sample(self, rng: np.random.Generator) -> int:
        # Geometric with support {1, 2, ...} and the requested mean.
        p = 1.0 / self.mean
        value = int(rng.geometric(p))
        return int(np.clip(value, self.minimum, self.maximum))


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf popularity weights over ``n`` items."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_zipf(rng: np.random.Generator, n: int, exponent: float) -> int:
    """Sample an item index in ``[0, n)`` with Zipf popularity."""
    return int(rng.choice(n, p=zipf_weights(n, exponent)))
