"""ShareGPT-like workload (paper Fig. 6b).

Targets: succinct model outputs ("often take tens or hundreds of tokens"),
sequences predominantly under ~2K tokens with a modest tail to ~5K, and
somewhat chattier sessions (more, shorter rounds) than LMSys.
"""

from __future__ import annotations

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace
from repro.workloads.trace import Trace

SHAREGPT_SHAPE = SessionShape(
    name="sharegpt",
    rounds=GeometricCount(mean=5.0, minimum=1, maximum=16),
    first_turn=LogNormalLength(median=70, sigma=0.9, minimum=4, maximum=1500),
    later_turn=LogNormalLength(median=50, sigma=0.9, minimum=4, maximum=1500),
    output=LogNormalLength(median=120, sigma=0.8, minimum=8, maximum=1200),
    shared_prefix_prob=0.5,
    n_templates=24,
    template_length=LogNormalLength(median=150, sigma=0.5, minimum=24, maximum=800),
    max_context_tokens=6000,
)


def generate_sharegpt_trace(params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate a ShareGPT-like trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_trace(SHAREGPT_SHAPE, params)
