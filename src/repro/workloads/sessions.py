"""Common machinery for building multi-round session traces.

Every workload (LMSys-like chat, ShareGPT-like chat, SWE-Bench-like agent
trajectories) is an instance of the same generative skeleton:

* sessions arrive at ``session_rate`` per second — Poisson by default, or
  a bursty two-state MMPP via ``WorkloadParams.arrival_process``;
* every session optionally opens with a *global preamble* shared by all
  sessions of the workload (a deployment-wide system prompt), followed by
  an optional *shared* template segment (task instructions / few-shot
  preamble / document) drawn from a Zipf-popular pool — both are the
  cross-session "purely input" reuse class, at two nesting levels;
* each round appends a fresh input segment (user turn or environment
  observation) and a fresh output segment (model response or agent
  action) — the within-session "input + output" reuse class;
* rounds stop at the workload's round count or when the accumulated
  context exceeds ``max_context_tokens`` (mirroring context-window limits).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import (
    MarkovModulatedPoisson,
    PoissonProcess,
    exponential_think_times,
)
from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.trace import Trace, TraceRound, TraceSession
from repro.workloads.vocab import SharedSegmentPool, fresh_tokens


@dataclass(frozen=True)
class SessionShape:
    """Workload-specific distributional knobs (see module docstring)."""

    name: str
    rounds: GeometricCount
    first_turn: LogNormalLength
    later_turn: LogNormalLength
    output: LogNormalLength
    shared_prefix_prob: float
    n_templates: int
    template_length: LogNormalLength
    template_zipf: float = 1.2
    max_context_tokens: int = 32768
    global_preamble_tokens: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.shared_prefix_prob <= 1.0:
            raise ValueError(
                f"shared_prefix_prob must be in [0, 1], got {self.shared_prefix_prob}"
            )
        if self.max_context_tokens <= 0:
            raise ValueError("max_context_tokens must be positive")
        if self.global_preamble_tokens < 0:
            raise ValueError("global_preamble_tokens must be non-negative")


@dataclass(frozen=True)
class WorkloadParams:
    """Scale and timing knobs shared by all workloads.

    ``session_rate`` and ``mean_think_s`` are the two arrival-pattern axes
    the paper sweeps in Fig. 13.  ``arrival_process`` selects homogeneous
    Poisson sessions (the paper's setting) or a bursty two-state MMPP with
    the same long-run rate (2.5x the rate during bursts, 0.5x between
    them) — public-facing traffic is rarely as smooth as Poisson.
    """

    n_sessions: int = 100
    session_rate: float = 1.0
    mean_think_s: float = 5.0
    seed: int = 0
    vocab_size: int = 32000
    arrival_process: str = "poisson"

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError(f"n_sessions must be positive, got {self.n_sessions}")
        if self.session_rate <= 0:
            raise ValueError(f"session_rate must be positive, got {self.session_rate}")
        if self.mean_think_s < 0:
            raise ValueError(f"mean_think_s must be non-negative, got {self.mean_think_s}")
        if self.vocab_size <= 1:
            raise ValueError(f"vocab_size must be > 1, got {self.vocab_size}")
        if self.arrival_process not in ("poisson", "bursty"):
            raise ValueError(
                f"arrival_process must be 'poisson' or 'bursty', "
                f"got {self.arrival_process!r}"
            )

    def make_arrival_process(self):
        """The configured session arrival process."""
        if self.arrival_process == "bursty":
            # (2.5 * on + 0.5 * off) / (on + off) == 1 for on=10, off=30,
            # so the long-run rate equals session_rate exactly.
            return MarkovModulatedPoisson(
                base_rate=0.5 * self.session_rate,
                burst_rate=2.5 * self.session_rate,
                mean_on_s=10.0,
                mean_off_s=30.0,
            )
        return PoissonProcess(self.session_rate)


def _pool_seed(shape_name: str, seed: int) -> int:
    """Stable integer seed for the template pool of one (workload, seed) pair.

    Template *content* is shared across traces with the same seed — two
    traces of the same workload can legitimately share system prompts —
    while differing workloads never collide.
    """
    return (zlib.crc32(shape_name.encode()) << 16) ^ (seed & 0xFFFF_FFFF)


def build_trace(shape: SessionShape, params: WorkloadParams) -> Trace:
    """Generate a full trace for one workload shape (deterministic in seed)."""
    rng = np.random.default_rng(params.seed)
    pool = SharedSegmentPool(
        base_seed=_pool_seed(shape.name, params.seed),
        n_templates=shape.n_templates,
        length=shape.template_length,
        vocab_size=params.vocab_size,
        zipf_exponent=shape.template_zipf,
    )
    preamble = global_preamble(shape, params)
    arrivals = params.make_arrival_process().arrival_times(rng, params.n_sessions)

    sessions = []
    for session_id in range(params.n_sessions):
        sessions.append(
            _build_session(
                session_id=session_id,
                arrival_time=float(arrivals[session_id]),
                shape=shape,
                params=params,
                pool=pool,
                preamble=preamble,
                rng=rng,
            )
        )
    return Trace(
        name=shape.name,
        seed=params.seed,
        sessions=sessions,
        metadata={
            "n_sessions": params.n_sessions,
            "session_rate": params.session_rate,
            "mean_think_s": params.mean_think_s,
            "vocab_size": params.vocab_size,
        },
    )


def global_preamble(shape: SessionShape, params: WorkloadParams) -> np.ndarray:
    """The deployment-wide shared prefix for one (workload, seed) pair.

    Deterministic in the same seed material as the template pool, so every
    session of a trace — and every trace sharing the seed — opens with the
    same tokens.
    """
    if shape.global_preamble_tokens == 0:
        return np.empty(0, dtype=np.int32)
    preamble_tag = zlib.crc32(b"global-preamble")
    rng = np.random.default_rng((_pool_seed(shape.name, params.seed), preamble_tag))
    return fresh_tokens(rng, shape.global_preamble_tokens, params.vocab_size)


def _build_session(
    session_id: int,
    arrival_time: float,
    shape: SessionShape,
    params: WorkloadParams,
    pool: SharedSegmentPool,
    preamble: np.ndarray,
    rng: np.random.Generator,
) -> TraceSession:
    target_rounds = shape.rounds.sample(rng)
    rounds: list[TraceRound] = []
    context = 0
    for round_index in range(target_rounds):
        if round_index == 0:
            parts = []
            if len(preamble) > 0:
                parts.append(preamble)
            if rng.random() < shape.shared_prefix_prob:
                parts.append(pool.sample(rng))
            parts.append(
                fresh_tokens(rng, shape.first_turn.sample(rng), params.vocab_size)
            )
            new_input = np.concatenate(parts)
        else:
            new_input = fresh_tokens(
                rng, shape.later_turn.sample(rng), params.vocab_size
            )
        output = fresh_tokens(rng, shape.output.sample(rng), params.vocab_size)
        if round_index > 0 and context + len(new_input) > shape.max_context_tokens:
            break
        rounds.append(TraceRound(new_input_tokens=new_input, output_tokens=output))
        context += len(new_input) + len(output)
    think_times = exponential_think_times(rng, len(rounds), params.mean_think_s)
    return TraceSession(
        session_id=session_id,
        arrival_time=arrival_time,
        rounds=rounds,
        think_times=think_times,
    )
