"""Common machinery for building multi-round session traces.

Every workload (LMSys-like chat, ShareGPT-like chat, SWE-Bench-like agent
trajectories) is an instance of the same generative skeleton:

* sessions arrive at ``session_rate`` per second — Poisson by default, or
  a bursty two-state MMPP via ``WorkloadParams.arrival_process``;
* every session optionally opens with a *global preamble* shared by all
  sessions of the workload (a deployment-wide system prompt), followed by
  an optional *shared* template segment (task instructions / few-shot
  preamble / document) drawn from a Zipf-popular pool — both are the
  cross-session "purely input" reuse class, at two nesting levels;
* each round appends a fresh input segment (user turn or environment
  observation) and a fresh output segment (model response or agent
  action) — the within-session "input + output" reuse class;
* rounds stop at the workload's round count or when the accumulated
  context exceeds ``max_context_tokens`` (mirroring context-window limits).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import (
    ARRIVAL_PROCESS_NAMES,
    exponential_think_times,
    make_arrival_process,
)
from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.trace import Trace, TraceRound, TraceSession, TraceStream
from repro.workloads.vocab import SharedSegmentPool, fresh_tokens


@dataclass(frozen=True)
class SessionShape:
    """Workload-specific distributional knobs (see module docstring)."""

    name: str
    rounds: GeometricCount
    first_turn: LogNormalLength
    later_turn: LogNormalLength
    output: LogNormalLength
    shared_prefix_prob: float
    n_templates: int
    template_length: LogNormalLength
    template_zipf: float = 1.2
    max_context_tokens: int = 32768
    global_preamble_tokens: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.shared_prefix_prob <= 1.0:
            raise ValueError(
                f"shared_prefix_prob must be in [0, 1], got {self.shared_prefix_prob}"
            )
        if self.max_context_tokens <= 0:
            raise ValueError("max_context_tokens must be positive")
        if self.global_preamble_tokens < 0:
            raise ValueError("global_preamble_tokens must be non-negative")


@dataclass(frozen=True)
class WorkloadParams:
    """Scale and timing knobs shared by all workloads.

    ``session_rate`` and ``mean_think_s`` are the two arrival-pattern axes
    the paper sweeps in Fig. 13.  ``arrival_process`` selects among the
    mean-rate-normalized presets of
    :func:`repro.workloads.arrivals.make_arrival_process`: homogeneous
    ``"poisson"`` (the paper's setting), ``"bursty"`` two-state MMPP,
    ``"diurnal"`` rate curves, or ``"flashcrowd"`` spikes — public-facing
    traffic is rarely as smooth as Poisson.
    """

    n_sessions: int = 100
    session_rate: float = 1.0
    mean_think_s: float = 5.0
    seed: int = 0
    vocab_size: int = 32000
    arrival_process: str = "poisson"

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError(f"n_sessions must be positive, got {self.n_sessions}")
        if self.session_rate <= 0:
            raise ValueError(f"session_rate must be positive, got {self.session_rate}")
        if self.mean_think_s < 0:
            raise ValueError(f"mean_think_s must be non-negative, got {self.mean_think_s}")
        if self.vocab_size <= 1:
            raise ValueError(f"vocab_size must be > 1, got {self.vocab_size}")
        if self.arrival_process not in ARRIVAL_PROCESS_NAMES:
            raise ValueError(
                f"arrival_process must be one of {ARRIVAL_PROCESS_NAMES}, "
                f"got {self.arrival_process!r}"
            )

    def make_arrival_process(self):
        """The configured session arrival process."""
        return make_arrival_process(self.arrival_process, self.session_rate)


def _pool_seed(shape_name: str, seed: int) -> int:
    """Stable integer seed for the template pool of one (workload, seed) pair.

    Template *content* is shared across traces with the same seed — two
    traces of the same workload can legitimately share system prompts —
    while differing workloads never collide.
    """
    return (zlib.crc32(shape_name.encode()) << 16) ^ (seed & 0xFFFF_FFFF)


def _trace_metadata(params: WorkloadParams) -> dict:
    metadata = {
        "n_sessions": params.n_sessions,
        "session_rate": params.session_rate,
        "mean_think_s": params.mean_think_s,
        "vocab_size": params.vocab_size,
    }
    if params.arrival_process != "poisson":
        metadata["arrival_process"] = params.arrival_process
    return metadata


def _session_generator(shape: SessionShape, params: WorkloadParams):
    """Yield the trace's sessions lazily, one RNG stream, arrival order.

    This is the single generative path: :func:`build_trace` materializes
    it and :func:`stream_trace` wraps it, so the two are byte-identical by
    construction.  Only the arrival-time vector (8 bytes per session) is
    held up front; token content is produced session by session.
    """
    rng = np.random.default_rng(params.seed)
    pool = SharedSegmentPool(
        base_seed=_pool_seed(shape.name, params.seed),
        n_templates=shape.n_templates,
        length=shape.template_length,
        vocab_size=params.vocab_size,
        zipf_exponent=shape.template_zipf,
    )
    preamble = global_preamble(shape, params)
    arrivals = params.make_arrival_process().arrival_times(rng, params.n_sessions)
    for session_id in range(params.n_sessions):
        yield _build_session(
            session_id=session_id,
            arrival_time=float(arrivals[session_id]),
            shape=shape,
            params=params,
            pool=pool,
            preamble=preamble,
            rng=rng,
        )


def stream_trace(shape: SessionShape, params: WorkloadParams) -> TraceStream:
    """Lazily generate a workload trace (deterministic in seed, re-iterable)."""
    return TraceStream(
        name=shape.name,
        seed=params.seed,
        factory=lambda: _session_generator(shape, params),
        n_sessions=params.n_sessions,
        metadata=_trace_metadata(params),
    )


def build_trace(shape: SessionShape, params: WorkloadParams) -> Trace:
    """Generate a full trace for one workload shape (deterministic in seed)."""
    return stream_trace(shape, params).materialize()


def global_preamble(shape: SessionShape, params: WorkloadParams) -> np.ndarray:
    """The deployment-wide shared prefix for one (workload, seed) pair.

    Deterministic in the same seed material as the template pool, so every
    session of a trace — and every trace sharing the seed — opens with the
    same tokens.
    """
    if shape.global_preamble_tokens == 0:
        return np.empty(0, dtype=np.int32)
    preamble_tag = zlib.crc32(b"global-preamble")
    rng = np.random.default_rng((_pool_seed(shape.name, params.seed), preamble_tag))
    return fresh_tokens(rng, shape.global_preamble_tokens, params.vocab_size)


def _build_session(
    session_id: int,
    arrival_time: float,
    shape: SessionShape,
    params: WorkloadParams,
    pool: SharedSegmentPool,
    preamble: np.ndarray,
    rng: np.random.Generator,
) -> TraceSession:
    target_rounds = shape.rounds.sample(rng)
    rounds: list[TraceRound] = []
    context = 0
    for round_index in range(target_rounds):
        if round_index == 0:
            parts = []
            if len(preamble) > 0:
                parts.append(preamble)
            if rng.random() < shape.shared_prefix_prob:
                parts.append(pool.sample(rng))
            parts.append(
                fresh_tokens(rng, shape.first_turn.sample(rng), params.vocab_size)
            )
            new_input = np.concatenate(parts)
        else:
            new_input = fresh_tokens(
                rng, shape.later_turn.sample(rng), params.vocab_size
            )
        output = fresh_tokens(rng, shape.output.sample(rng), params.vocab_size)
        if round_index > 0 and context + len(new_input) > shape.max_context_tokens:
            break
        rounds.append(TraceRound(new_input_tokens=new_input, output_tokens=output))
        context += len(new_input) + len(output)
    think_times = exponential_think_times(rng, len(rounds), params.mean_think_s)
    return TraceSession(
        session_id=session_id,
        arrival_time=arrival_time,
        rounds=rounds,
        think_times=think_times,
    )
