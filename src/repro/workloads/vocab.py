"""Token material for synthetic traces.

Two kinds of token segments exist in the generators:

* **Shared segments** (system prompts, instruction templates, few-shot
  preambles) — drawn from a deterministic pool so that distinct sessions
  can share byte-identical prefixes, which is the "purely input" reuse
  class of the paper's taxonomy.
* **Fresh segments** (user turns, model outputs, environment observations)
  — sampled from the trace's main RNG stream; with a 32K vocabulary the
  probability of two independent fresh segments sharing a long prefix is
  negligible, so only intentional sharing creates cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.distributions import LogNormalLength, zipf_weights


def fresh_tokens(rng: np.random.Generator, n: int, vocab_size: int) -> np.ndarray:
    """``n`` independent uniform token IDs (unique content)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.integers(0, vocab_size, size=n, dtype=np.int32)


@dataclass
class SharedSegmentPool:
    """A deterministic pool of reusable token segments with Zipf popularity.

    Template contents depend only on ``(base_seed, template index)``, so a
    pool rebuilt with the same seed yields identical segments — traces are
    reproducible end to end.
    """

    base_seed: int
    n_templates: int
    length: LogNormalLength
    vocab_size: int
    zipf_exponent: float = 1.2
    _templates: list[np.ndarray] = field(default_factory=list, repr=False)
    _weights: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_templates <= 0:
            raise ValueError(f"n_templates must be positive, got {self.n_templates}")
        self._templates = []
        for index in range(self.n_templates):
            rng = np.random.default_rng((self.base_seed, index))
            n = self.length.sample(rng)
            self._templates.append(fresh_tokens(rng, n, self.vocab_size))
        self._weights = zipf_weights(self.n_templates, self.zipf_exponent)

    def get(self, index: int) -> np.ndarray:
        """Template by index (read-only by convention)."""
        return self._templates[index]

    def sample_index(self, rng: np.random.Generator) -> int:
        """Zipf-popular template index."""
        return int(rng.choice(self.n_templates, p=self._weights))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-popular template segment."""
        return self.get(self.sample_index(rng))

    @property
    def template_lengths(self) -> list[int]:
        return [len(t) for t in self._templates]
