"""Self-consistency sampling workload (Wang et al. 2022; paper section 4.1).

The paper lists "self-consistency (Wang et al., 2022)" among the *purely
input* reuse scenarios: the same chain-of-thought prompt is sampled ``k``
times and the answers are majority-voted, so ``k`` requests with
*byte-identical inputs* arrive nearly simultaneously.

This workload is the sharpest probe of the "all or nothing" property: for
*byte-identical* inputs the branch point sits exactly at the input
boundary, and a recurrent checkpoint can only serve a strictly longer
input (the final input token must always be prefilled to produce the first
decode step's logits) — so Marconi's node-granular checkpoints cannot
serve the repeats, while vLLM+'s block-grained states reuse all but the
final partial block, at its usual per-sample memory cost.  The reuse
Marconi *does* capture here is the shared chain-of-thought preamble across
queries (the template pool), making this the honest stress test of where
judicious admission trades hit rate for memory.

Because all ``k`` samples share one query, ``WorkloadParams.n_sessions``
counts *queries*; each query emits one single-round session per sample.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import WorkloadParams, _pool_seed
from repro.workloads.trace import Trace, TraceRound, TraceSession, TraceStream
from repro.workloads.vocab import SharedSegmentPool, fresh_tokens


@dataclass(frozen=True)
class SelfConsistencyShape:
    """Distributional knobs of the self-consistency workload."""

    name: str = "selfconsistency"
    samples: GeometricCount = GeometricCount(mean=8.0, minimum=2, maximum=40)
    question: LogNormalLength = LogNormalLength(median=180, sigma=0.7, minimum=20, maximum=2000)
    output: LogNormalLength = LogNormalLength(median=350, sigma=0.8, minimum=32, maximum=3000)
    n_templates: int = 12
    template_length: LogNormalLength = LogNormalLength(
        median=600, sigma=0.5, minimum=100, maximum=3000
    )
    template_zipf: float = 1.2
    sample_spread_s: float = 0.5

    def __post_init__(self) -> None:
        if self.sample_spread_s < 0:
            raise ValueError(
                f"sample_spread_s must be non-negative, got {self.sample_spread_s}"
            )


SELFCONSISTENCY_SHAPE = SelfConsistencyShape()


def build_selfconsistency_trace(
    shape: SelfConsistencyShape, params: WorkloadParams
) -> Trace:
    """Generate a self-consistency trace (deterministic in the seed)."""
    rng = np.random.default_rng(params.seed)
    pool = SharedSegmentPool(
        base_seed=_pool_seed(shape.name, params.seed),
        n_templates=shape.n_templates,
        length=shape.template_length,
        vocab_size=params.vocab_size,
        zipf_exponent=shape.template_zipf,
    )
    query_arrivals = params.make_arrival_process().arrival_times(
        rng, params.n_sessions
    )

    sessions: list[TraceSession] = []
    session_id = 0
    total_samples = 0
    for query_index in range(params.n_sessions):
        k = shape.samples.sample(rng)
        total_samples += k
        prompt = np.concatenate(
            [
                pool.sample(rng),
                fresh_tokens(rng, shape.question.sample(rng), params.vocab_size),
            ]
        )
        base_arrival = float(query_arrivals[query_index])
        for sample_index in range(k):
            # The first sample fires at the query's arrival; the rest land
            # within the dispatch spread (parallel sampling with queueing
            # jitter, not a think-time loop).
            offset = 0.0 if sample_index == 0 else float(
                rng.uniform(0.0, shape.sample_spread_s)
            )
            output = fresh_tokens(rng, shape.output.sample(rng), params.vocab_size)
            sessions.append(
                TraceSession(
                    session_id=session_id,
                    arrival_time=base_arrival + offset,
                    rounds=[TraceRound(new_input_tokens=prompt, output_tokens=output)],
                    think_times=[0.0],
                )
            )
            session_id += 1

    return Trace(
        name=shape.name,
        seed=params.seed,
        sessions=sessions,
        metadata={
            "n_queries": params.n_sessions,
            "n_samples": total_samples,
            "session_rate": params.session_rate,
            "mean_think_s": params.mean_think_s,
            "vocab_size": params.vocab_size,
        },
    )


def _selfconsistency_session_generator(
    shape: SelfConsistencyShape, params: WorkloadParams
) -> Iterator[TraceSession]:
    """Yield self-consistency sessions in arrival order, lazily.

    Generation order is per-query, but sample dispatch jitter (bounded by
    ``sample_spread_s``) lets a query's later samples land after the next
    query's arrival.  A small reorder heap fixes that: a buffered session
    at time ``t`` is safe to emit once a query arrives at ``base >= t``,
    because every future session arrives at or after that base.  The
    buffer therefore holds only the sessions inside one spread window.
    """
    rng = np.random.default_rng(params.seed)
    pool = SharedSegmentPool(
        base_seed=_pool_seed(shape.name, params.seed),
        n_templates=shape.n_templates,
        length=shape.template_length,
        vocab_size=params.vocab_size,
        zipf_exponent=shape.template_zipf,
    )
    query_arrivals = params.make_arrival_process().arrival_times(
        rng, params.n_sessions
    )
    buffer: list[tuple[float, int, TraceSession]] = []
    session_id = 0
    for query_index in range(params.n_sessions):
        base_arrival = float(query_arrivals[query_index])
        while buffer and buffer[0][0] <= base_arrival:
            yield heapq.heappop(buffer)[2]
        k = shape.samples.sample(rng)
        prompt = np.concatenate(
            [
                pool.sample(rng),
                fresh_tokens(rng, shape.question.sample(rng), params.vocab_size),
            ]
        )
        for sample_index in range(k):
            offset = 0.0 if sample_index == 0 else float(
                rng.uniform(0.0, shape.sample_spread_s)
            )
            output = fresh_tokens(rng, shape.output.sample(rng), params.vocab_size)
            session = TraceSession(
                session_id=session_id,
                arrival_time=base_arrival + offset,
                rounds=[TraceRound(new_input_tokens=prompt, output_tokens=output)],
                think_times=[0.0],
            )
            heapq.heappush(buffer, (session.arrival_time, session_id, session))
            session_id += 1
    while buffer:
        yield heapq.heappop(buffer)[2]


def stream_selfconsistency_trace(
    shape: SelfConsistencyShape, params: WorkloadParams
) -> TraceStream:
    """Lazily generate a self-consistency trace, sorted by arrival time.

    Token content is identical to :func:`build_selfconsistency_trace` for
    the same params (one RNG stream, same draw order); only the session
    *order* differs — the stream yields by arrival time, the materialized
    builder keeps per-query generation order.
    """
    return TraceStream(
        name=shape.name,
        seed=params.seed,
        factory=lambda: _selfconsistency_session_generator(shape, params),
        metadata={
            "n_queries": params.n_sessions,
            "session_rate": params.session_rate,
            "mean_think_s": params.mean_think_s,
            "vocab_size": params.vocab_size,
        },
    )


def generate_selfconsistency_trace(
    params: WorkloadParams | None = None, **kwargs
) -> Trace:
    """Generate a self-consistency trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_selfconsistency_trace(SELFCONSISTENCY_SHAPE, params)


def generate_selfconsistency_stream(
    params: WorkloadParams | None = None, **kwargs
) -> TraceStream:
    """Streaming variant of :func:`generate_selfconsistency_trace`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return stream_selfconsistency_trace(SELFCONSISTENCY_SHAPE, params)
