"""LMSys-Chat-1M-like workload (paper Fig. 6a).

Distributional targets, read off the paper's Fig. 6a and section 5.1's
description: multi-turn chatbot sessions with relatively *long* model
outputs ("often reaching thousands of tokens"), full-request inputs
concentrated below ~10K tokens with a tail to ~30K (accumulated
conversation context), and a moderate fraction of sessions opening with a
shared system prompt.
"""

from __future__ import annotations

from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace
from repro.workloads.trace import Trace

LMSYS_SHAPE = SessionShape(
    name="lmsys",
    rounds=GeometricCount(mean=4.0, minimum=1, maximum=16),
    first_turn=LogNormalLength(median=90, sigma=1.0, minimum=4, maximum=2000),
    later_turn=LogNormalLength(median=60, sigma=1.0, minimum=4, maximum=2000),
    output=LogNormalLength(median=400, sigma=1.1, minimum=16, maximum=6000),
    shared_prefix_prob=0.6,
    n_templates=20,
    template_length=LogNormalLength(median=250, sigma=0.5, minimum=32, maximum=1500),
    max_context_tokens=32000,
)


def generate_lmsys_trace(params: WorkloadParams | None = None, **kwargs) -> Trace:
    """Generate an LMSys-like trace; kwargs override :class:`WorkloadParams`."""
    if params is None:
        params = WorkloadParams(**kwargs)
    elif kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    return build_trace(LMSYS_SHAPE, params)
