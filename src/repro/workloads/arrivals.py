"""Arrival processes: Poisson session starts and think-time gaps.

The paper's microbenchmarks vary two timing knobs (Fig. 13): the session
arrival rate (sessions per second, open-loop across sessions) and the
average response time between a session's requests (human typing / IDE
interaction, closed-loop within a session).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate`` events per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times (cumulative exponential gaps)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        gaps = rng.exponential(scale=1.0 / self.rate, size=n)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class MarkovModulatedPoisson:
    """Two-state MMPP: bursty arrivals alternating busy and quiet phases.

    Real public-facing traffic (the paper's ShareGPT/LMSys setting) is
    burstier than a homogeneous Poisson stream: diurnal peaks, retry
    storms, and batch submissions produce arrival clusters that stress a
    cache much harder than the same mean rate spread evenly.  The process
    alternates exponentially-dwelled ON (``burst_rate``) and OFF
    (``base_rate``) phases.
    """

    base_rate: float
    burst_rate: float
    mean_on_s: float = 10.0
    mean_off_s: float = 30.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.burst_rate <= 0:
            raise ValueError("rates must be positive")
        if self.burst_rate < self.base_rate:
            raise ValueError(
                f"burst_rate ({self.burst_rate}) must be >= base_rate ({self.base_rate})"
            )
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("phase dwell times must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate across both phases."""
        total = self.mean_on_s + self.mean_off_s
        return (
            self.burst_rate * self.mean_on_s + self.base_rate * self.mean_off_s
        ) / total

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times, alternating ON/OFF phases."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        times = np.empty(n, dtype=np.float64)
        now = 0.0
        produced = 0
        on = bool(rng.random() < self.mean_on_s / (self.mean_on_s + self.mean_off_s))
        phase_end = now + rng.exponential(self.mean_on_s if on else self.mean_off_s)
        rate = self.burst_rate if on else self.base_rate
        while produced < n:
            candidate = now + rng.exponential(1.0 / rate)
            if candidate > phase_end:
                # No arrival before the phase flips; advance the phase.
                now = phase_end
                on = not on
                rate = self.burst_rate if on else self.base_rate
                phase_end = now + rng.exponential(
                    self.mean_on_s if on else self.mean_off_s
                )
                continue
            now = candidate
            times[produced] = now
            produced += 1
        return times


def _thinned_arrivals(
    rng: np.random.Generator,
    n: int,
    rate_at,
    rate_max: float,
) -> np.ndarray:
    """First ``n`` arrivals of a non-homogeneous Poisson process.

    Lewis–Shedler thinning: candidates are drawn from a homogeneous
    process at ``rate_max`` and kept with probability
    ``rate_at(t) / rate_max``, giving an exact sample of the
    inhomogeneous process for any bounded rate curve.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    times = np.empty(n, dtype=np.float64)
    now = 0.0
    produced = 0
    while produced < n:
        now += rng.exponential(1.0 / rate_max)
        if rng.random() * rate_max <= rate_at(now):
            times[produced] = now
            produced += 1
    return times


@dataclass(frozen=True)
class DiurnalProcess:
    """Non-homogeneous Poisson arrivals following a daily rate curve.

    Cluster-scale traces exhibit strong diurnal cycles: demand swells
    toward a daily peak and bottoms out off-hours.  The rate curve is the
    classic sinusoid ``mean_rate * (1 + amplitude * sin(2*pi*t/period))``
    (``phase`` shifts where the peak falls), sampled exactly by thinning.
    The default period is one compressed "day" of an hour so that bench-
    scale traces actually traverse peak and trough; pass ``period_s=86400``
    for wall-clock days.
    """

    mean_rate: float
    amplitude: float = 0.6
    period_s: float = 3600.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {self.mean_rate}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (seconds)."""
        angle = 2.0 * np.pi * (t / self.period_s) + self.phase
        return self.mean_rate * (1.0 + self.amplitude * np.sin(angle))

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times of the diurnal process."""
        return _thinned_arrivals(
            rng, n, self.rate_at, self.mean_rate * (1.0 + self.amplitude)
        )


@dataclass(frozen=True)
class FlashCrowdProcess:
    """A base arrival stream punctuated by flash-crowd spikes.

    Models the announcement effect (a product launch, a viral link): the
    baseline ``base_rate`` jumps to ``spike_multiplier`` times itself for
    ``spike_duration_s`` seconds at each time in ``spike_times``, then
    collapses back.  With ``spike_period_s`` set the schedule repeats
    indefinitely (``spike_times`` are offsets within one cycle), so the
    envelope — and any mean-rate normalization over it — holds for traces
    of any length, not just the first cycle.  Layered multiplicatively
    over the homogeneous base via thinning, so it composes with the
    diurnal curve by nesting ``rate_at`` calls if needed.  Spikes are the
    sharpest cache stress the arrival axis can produce: a burst of
    near-simultaneous sessions whose shared prefixes either all hit or
    all thrash.
    """

    base_rate: float
    spike_times: tuple[float, ...] = (60.0, 300.0)
    spike_duration_s: float = 30.0
    spike_multiplier: float = 6.0
    spike_period_s: float | None = None

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.spike_duration_s <= 0:
            raise ValueError(
                f"spike_duration_s must be positive, got {self.spike_duration_s}"
            )
        if self.spike_multiplier < 1.0:
            raise ValueError(
                f"spike_multiplier must be >= 1, got {self.spike_multiplier}"
            )
        if any(t < 0 for t in self.spike_times):
            raise ValueError("spike times must be non-negative")
        if self.spike_period_s is not None:
            if self.spike_period_s <= 0:
                raise ValueError(
                    f"spike_period_s must be positive, got {self.spike_period_s}"
                )
            if any(
                t + self.spike_duration_s > self.spike_period_s
                for t in self.spike_times
            ):
                raise ValueError(
                    "periodic spike windows must fit inside one period "
                    "(start + duration <= spike_period_s)"
                )
        # Normalize: tuples keep the dataclass hashable and the rate
        # function cheap (a few comparisons per candidate).
        object.__setattr__(self, "spike_times", tuple(sorted(self.spike_times)))

    def in_spike(self, t: float) -> bool:
        """Whether ``t`` falls inside any spike window."""
        if self.spike_period_s is not None:
            t = t % self.spike_period_s
        for start in self.spike_times:
            if start <= t < start + self.spike_duration_s:
                return True
            if t < start:
                break
        return False

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (seconds)."""
        if self.in_spike(t):
            return self.base_rate * self.spike_multiplier
        return self.base_rate

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times of the spiked process."""
        return _thinned_arrivals(
            rng, n, self.rate_at, self.base_rate * self.spike_multiplier
        )


#: Names accepted by :func:`make_arrival_process` and
#: :class:`repro.workloads.sessions.WorkloadParams.arrival_process`.
ARRIVAL_PROCESS_NAMES: tuple[str, ...] = ("poisson", "bursty", "diurnal", "flashcrowd")


def make_arrival_process(name: str, session_rate: float):
    """Build a named arrival process with long-run mean ``session_rate``.

    Every preset is mean-rate-normalized so swapping the process changes
    *when* sessions land but not *how many per second* on average — the
    axis the paper's Fig. 13 sweeps stays comparable across processes:

    * ``poisson`` — homogeneous (the paper's setting);
    * ``bursty`` — two-state MMPP, 2.5x the rate during 10 s bursts and
      0.5x during 30 s lulls (long-run mean = ``session_rate`` exactly);
    * ``diurnal`` — sinusoidal rate curve over a compressed one-hour day;
    * ``flashcrowd`` — 6x spikes of 20 s every 120 s over a lowered base
      (mean over each 120 s cycle = ``session_rate`` exactly).
    """
    if name == "poisson":
        return PoissonProcess(session_rate)
    if name == "bursty":
        # (2.5 * on + 0.5 * off) / (on + off) == 1 for on=10, off=30,
        # so the long-run rate equals session_rate exactly.
        return MarkovModulatedPoisson(
            base_rate=0.5 * session_rate,
            burst_rate=2.5 * session_rate,
            mean_on_s=10.0,
            mean_off_s=30.0,
        )
    if name == "diurnal":
        # A sinusoid is mean-rate-normalized over whole periods already.
        return DiurnalProcess(mean_rate=session_rate, amplitude=0.6, period_s=3600.0)
    if name == "flashcrowd":
        # One 20 s spike at 6x per repeating 120 s cycle: mean multiplier
        # is (20 * 6 + 100 * 1) / 120 = 11/6; divide the base so the
        # long-run rate equals session_rate exactly, over any horizon.
        duration, multiplier, cycle = 20.0, 6.0, 120.0
        mean_multiplier = (
            duration * multiplier + (cycle - duration)
        ) / cycle
        return FlashCrowdProcess(
            base_rate=session_rate / mean_multiplier,
            spike_times=(30.0,),
            spike_duration_s=duration,
            spike_multiplier=multiplier,
            spike_period_s=cycle,
        )
    raise KeyError(
        f"unknown arrival process {name!r}; known: {ARRIVAL_PROCESS_NAMES}"
    )


def exponential_think_times(
    rng: np.random.Generator, n_rounds: int, mean_seconds: float
) -> list[float]:
    """Think-time gaps for one session: 0 before round 0, exp(mean) after.

    The gap models user response time (or an agent's environment
    interaction latency) between receiving round ``k``'s response and
    issuing round ``k + 1``.
    """
    if n_rounds <= 0:
        raise ValueError(f"n_rounds must be positive, got {n_rounds}")
    if mean_seconds < 0:
        raise ValueError(f"mean_seconds must be non-negative, got {mean_seconds}")
    if n_rounds == 1:
        return [0.0]
    gaps = rng.exponential(scale=mean_seconds, size=n_rounds - 1) if mean_seconds > 0 else np.zeros(n_rounds - 1)
    return [0.0] + [float(g) for g in gaps]
