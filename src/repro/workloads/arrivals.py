"""Arrival processes: Poisson session starts and think-time gaps.

The paper's microbenchmarks vary two timing knobs (Fig. 13): the session
arrival rate (sessions per second, open-loop across sessions) and the
average response time between a session's requests (human typing / IDE
interaction, closed-loop within a session).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate`` events per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times (cumulative exponential gaps)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        gaps = rng.exponential(scale=1.0 / self.rate, size=n)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class MarkovModulatedPoisson:
    """Two-state MMPP: bursty arrivals alternating busy and quiet phases.

    Real public-facing traffic (the paper's ShareGPT/LMSys setting) is
    burstier than a homogeneous Poisson stream: diurnal peaks, retry
    storms, and batch submissions produce arrival clusters that stress a
    cache much harder than the same mean rate spread evenly.  The process
    alternates exponentially-dwelled ON (``burst_rate``) and OFF
    (``base_rate``) phases.
    """

    base_rate: float
    burst_rate: float
    mean_on_s: float = 10.0
    mean_off_s: float = 30.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.burst_rate <= 0:
            raise ValueError("rates must be positive")
        if self.burst_rate < self.base_rate:
            raise ValueError(
                f"burst_rate ({self.burst_rate}) must be >= base_rate ({self.base_rate})"
            )
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("phase dwell times must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate across both phases."""
        total = self.mean_on_s + self.mean_off_s
        return (
            self.burst_rate * self.mean_on_s + self.base_rate * self.mean_off_s
        ) / total

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """First ``n`` arrival times, alternating ON/OFF phases."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        times = np.empty(n, dtype=np.float64)
        now = 0.0
        produced = 0
        on = bool(rng.random() < self.mean_on_s / (self.mean_on_s + self.mean_off_s))
        phase_end = now + rng.exponential(self.mean_on_s if on else self.mean_off_s)
        rate = self.burst_rate if on else self.base_rate
        while produced < n:
            candidate = now + rng.exponential(1.0 / rate)
            if candidate > phase_end:
                # No arrival before the phase flips; advance the phase.
                now = phase_end
                on = not on
                rate = self.burst_rate if on else self.base_rate
                phase_end = now + rng.exponential(
                    self.mean_on_s if on else self.mean_off_s
                )
                continue
            now = candidate
            times[produced] = now
            produced += 1
        return times


def exponential_think_times(
    rng: np.random.Generator, n_rounds: int, mean_seconds: float
) -> list[float]:
    """Think-time gaps for one session: 0 before round 0, exp(mean) after.

    The gap models user response time (or an agent's environment
    interaction latency) between receiving round ``k``'s response and
    issuing round ``k + 1``.
    """
    if n_rounds <= 0:
        raise ValueError(f"n_rounds must be positive, got {n_rounds}")
    if mean_seconds < 0:
        raise ValueError(f"mean_seconds must be non-negative, got {mean_seconds}")
    if n_rounds == 1:
        return [0.0]
    gaps = rng.exponential(scale=mean_seconds, size=n_rounds - 1) if mean_seconds > 0 else np.zeros(n_rounds - 1)
    return [0.0] + [float(g) for g in gaps]
