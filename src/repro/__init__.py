"""Reproduction of "Marconi: Prefix Caching for the Era of Hybrid LLMs"
(Pan et al., MLSys 2025).

Public surface:

* :class:`repro.core.MarconiCache` — the paper's prefix cache (radix tree,
  judicious admission, FLOP-aware eviction, bootstrap alpha tuning).
* :mod:`repro.baselines` — vanilla / vLLM+ / SGLang+ / static-alpha oracle.
* :mod:`repro.models` — hybrid-model FLOP and state-size cost models.
* :mod:`repro.workloads` — synthetic LMSys / ShareGPT / SWEBench traces.
* :mod:`repro.engine` — discrete-event serving simulator with TTFT model.
* :mod:`repro.nn` — an executable NumPy hybrid LLM for exact-reuse checks.
* :mod:`repro.tiering` — two-tier (demote/promote) hierarchical caching.
* :mod:`repro.cluster` — multi-replica cache steering: a router-side
  prefix directory, cross-replica state transfers, elastic/failure scenarios.
* :mod:`repro.analysis` — clairvoyant replay bound and reuse taxonomy.
* :mod:`repro.experiments` — one harness per paper figure/table.
"""

from repro.core import MarconiCache, RequestSession, SessionState
from repro.analysis import clairvoyant_replay, classify_trace
from repro.baselines import SGLangPlusCache, VanillaCache, VLLMPlusCache, make_cache
from repro.cluster import (
    DirectoryRouter,
    PrefixDirectory,
    ScenarioEvent,
    make_router,
    simulate_cluster,
)
from repro.engine import (
    IterationConfig,
    IterationSimulator,
    KernelConfig,
    LatencyModel,
    ServingSimulator,
    SimulationKernel,
    simulate_trace,
    simulate_trace_iteration,
)
from repro.models import ModelConfig, hybrid_7b, mamba_7b, transformer_7b
from repro.tiering import TieredMarconiCache
from repro.workloads import (
    WorkloadParams,
    generate_docqa_trace,
    generate_fewshot_trace,
    generate_lmsys_trace,
    generate_selfconsistency_trace,
    generate_sharegpt_trace,
    generate_swebench_trace,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "MarconiCache",
    "RequestSession",
    "SessionState",
    "TieredMarconiCache",
    "VanillaCache",
    "VLLMPlusCache",
    "SGLangPlusCache",
    "make_cache",
    "make_router",
    "simulate_cluster",
    "DirectoryRouter",
    "PrefixDirectory",
    "ScenarioEvent",
    "clairvoyant_replay",
    "classify_trace",
    "IterationConfig",
    "IterationSimulator",
    "KernelConfig",
    "LatencyModel",
    "ServingSimulator",
    "SimulationKernel",
    "simulate_trace",
    "simulate_trace_iteration",
    "ModelConfig",
    "hybrid_7b",
    "mamba_7b",
    "transformer_7b",
    "WorkloadParams",
    "generate_lmsys_trace",
    "generate_sharegpt_trace",
    "generate_swebench_trace",
    "generate_docqa_trace",
    "generate_fewshot_trace",
    "generate_selfconsistency_trace",
    "generate_trace",
    "__version__",
]
