import setuptools; setuptools.setup()
